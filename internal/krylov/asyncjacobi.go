package krylov

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/asynclinalg/asyrgs/internal/atomicfloat"
	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// AsyncJacobi runs the classical asynchronous (chaotic-relaxation) Jacobi
// iteration: each worker repeatedly sweeps its own contiguous block of
// coordinates, computing x_i ← (b_i − Σ_{j≠i} A_ij x_j)/A_ii from whatever
// values of x are currently visible, with no barriers between sweeps.
// This is the method of the historical literature the paper revisits
// (Chazan–Miranker; evaluated by Bethune et al. and analysed by
// Hook–Dingle): deterministic coordinate order, convergence guaranteed
// only for contraction-type matrices (e.g. diagonally dominant), and a
// single slow worker starves its whole block.
//
// Each worker performs `sweeps` passes over its block; the total work is
// comparable to `sweeps` synchronous Jacobi sweeps. Writes are atomic so
// the ablation against AsyRGS isolates the direction strategy, not the
// memory model.
func AsyncJacobi(a *sparse.CSR, x, b []float64, sweeps, workers int) StationaryResult {
	return AsyncJacobiWithInv(a, InvDiag(a), x, b, sweeps, workers)
}

// AsyncJacobiWithInv is AsyncJacobi with a precomputed D⁻¹ (see InvDiag),
// the prepared-state entry point: no per-call diagonal extraction.
func AsyncJacobiWithInv(a *sparse.CSR, inv, x, b []float64, sweeps, workers int) StationaryResult {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n || len(inv) != n {
		panic("krylov: AsyncJacobi shape mismatch")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	// All workers start together (as real deployments launch them) and
	// yield the processor between sweeps; there are still no barriers or
	// locks during iteration, but tiny blocks cannot race through their
	// whole budget before the other goroutines are even scheduled.
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			<-start
			for s := 0; s < sweeps; s++ {
				for i := lo; i < hi; i++ {
					if inv[i] == 0 {
						continue
					}
					dot := a.RowDotAtomic(i, x)
					// dot includes A_ii·x_i; the Jacobi/GS hybrid update
					// x_i += (b_i − A_i·x)/A_ii is the natural chaotic
					// relaxation step (within a block it is Gauss–Seidel,
					// across blocks Jacobi-with-stale-data).
					atomicfloat.Add(&x[i], (b[i]-dot)*inv[i])
				}
				runtime.Gosched()
			}
		}(lo, hi)
	}
	close(start)
	wg.Wait()
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}
	res := relResidual(a, x, b, normB)
	return StationaryResult{Sweeps: sweeps, Residual: res}
}

// AsyncJacobiThrottled is AsyncJacobi with a per-iteration hook, mirroring
// core.Options.Throttle, so the fault-injection experiments can starve a
// block and demonstrate the single-point-of-failure weakness that
// randomization removes.
func AsyncJacobiThrottled(a *sparse.CSR, x, b []float64, sweeps, workers int, throttle func(worker int, i int)) StationaryResult {
	return AsyncJacobiThrottledWithInv(a, InvDiag(a), x, b, sweeps, workers, throttle)
}

// AsyncJacobiThrottledWithInv is AsyncJacobiThrottled with a precomputed
// D⁻¹ (see InvDiag), the prepared-state entry point.
func AsyncJacobiThrottledWithInv(a *sparse.CSR, inv, x, b []float64, sweeps, workers int, throttle func(worker int, i int)) StationaryResult {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n || len(inv) != n {
		panic("krylov: AsyncJacobiThrottled shape mismatch")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	start := make(chan struct{})
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			<-start
			for s := 0; s < sweeps; s++ {
				for i := lo; i < hi; i++ {
					if throttle != nil {
						throttle(w, i)
					}
					if inv[i] == 0 {
						continue
					}
					dot := a.RowDotAtomic(i, x)
					atomicfloat.Add(&x[i], (b[i]-dot)*inv[i])
					done.Add(1)
				}
				runtime.Gosched()
			}
		}(w, lo, hi)
	}
	close(start)
	wg.Wait()
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}
	return StationaryResult{Sweeps: sweeps, Residual: relResidual(a, x, b, normB)}
}
