package krylov

import (
	"context"
	"errors"
	"math"

	"github.com/asynclinalg/asyrgs/internal/sparse"
	"github.com/asynclinalg/asyrgs/internal/vec"
)

// ErrNotConverged is returned when an iteration budget is exhausted before
// the requested tolerance is met. The iterate still holds the best
// approximation computed.
var ErrNotConverged = errors.New("krylov: did not reach the requested tolerance")

// CGOptions configure a conjugate-gradient run.
type CGOptions struct {
	// Tol is the relative-residual convergence threshold ‖b−Ax‖/‖b‖.
	Tol float64
	// MaxIter caps the number of iterations; 0 means 10·n.
	MaxIter int
	// Workers parallelizes the SpMV; 0 or 1 is serial.
	Workers int
	// Partition selects the parallel SpMV row partitioning. The paper uses
	// round-robin because its matrix has "very little to no structure".
	Partition sparse.Partition
	// Precond, when non-nil, runs preconditioned CG. It must represent a
	// fixed SPD operator; for operators that change between applications
	// use FlexibleCG.
	Precond Preconditioner
	// History, when non-nil, receives the relative residual after every
	// iteration (index 0 = initial residual).
	History *[]float64
	// Ctx, when non-nil, is checked before every iteration; a cancelled
	// context stops the solve and returns the context's error with the
	// best iterate so far left in x.
	Ctx context.Context
}

// CGResult reports a conjugate-gradient run.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	MatVecs    int
}

// CG solves the SPD system A·x = b by (optionally preconditioned)
// conjugate gradients, starting from the initial guess in x.
func CG(a *sparse.CSR, x, b []float64, opts CGOptions) (CGResult, error) {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		panic("krylov: CG shape mismatch")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	normB := vec.Nrm2(b)
	if normB == 0 {
		normB = 1
	}

	r := make([]float64, n)
	ap := make([]float64, n)
	a.MulVecPar(ap, x, opts.Workers, opts.Partition)
	matvecs := 1
	vec.Sub(r, b, ap)

	z := r
	if opts.Precond != nil {
		z = make([]float64, n)
		opts.Precond.Apply(z, r)
	}
	p := append([]float64(nil), z...)
	rz := vec.Dot(r, z)

	res := vec.Nrm2(r) / normB
	if opts.History != nil {
		*opts.History = append(*opts.History, res)
	}
	if res <= tol {
		return CGResult{Iterations: 0, Residual: res, Converged: true, MatVecs: matvecs}, nil
	}

	for it := 1; it <= maxIter; it++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return CGResult{Iterations: it - 1, Residual: res, MatVecs: matvecs}, err
			}
		}
		a.MulVecPar(ap, p, opts.Workers, opts.Partition)
		matvecs++
		pap := vec.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Loss of positive definiteness (numerically); stop with the
			// current iterate rather than diverging.
			return CGResult{Iterations: it - 1, Residual: vec.Nrm2(r) / normB, MatVecs: matvecs}, ErrNotConverged
		}
		alpha := rz / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		res = vec.Nrm2(r) / normB
		if opts.History != nil {
			*opts.History = append(*opts.History, res)
		}
		if res <= tol {
			return CGResult{Iterations: it, Residual: res, Converged: true, MatVecs: matvecs}, nil
		}
		if opts.Precond != nil {
			opts.Precond.Apply(z, r)
		}
		rzNew := vec.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return CGResult{Iterations: maxIter, Residual: res, MatVecs: matvecs}, ErrNotConverged
}

// CGDense runs independent conjugate-gradient recurrences on every column
// of the row-major block X for A·X = B, sharing the (parallel) sparse
// matrix product across columns — the "SIMD variant of CG" of the paper's
// §9 where the 51 systems are solved together and the blocks are stored
// row-major for locality. Columns that converge early are frozen.
//
// history, when non-nil, receives ‖B−AX‖_F/‖B‖_F after every iteration.
func CGDense(a *sparse.CSR, x, b *vec.Dense, opts CGOptions, history *[]float64) (CGResult, error) {
	n := a.Rows
	c := x.Cols
	if a.Cols != n || x.Rows != n || b.Rows != n || b.Cols != c {
		panic("krylov: CGDense shape mismatch")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	normB := vec.Nrm2(b.Data)
	if normB == 0 {
		normB = 1
	}

	r := vec.NewDense(n, c)
	p := vec.NewDense(n, c)
	ap := vec.NewDense(n, c)
	a.MulDense(ap.Data, x.Data, c, opts.Workers)
	matvecs := 1
	vec.Sub(r.Data, b.Data, ap.Data)
	copy(p.Data, r.Data)

	rz := make([]float64, c)    // per-column (r,r)
	active := make([]bool, c)   // per-column convergence state
	alpha := make([]float64, c) // per-column step
	pap := make([]float64, c)   // per-column (p,Ap)
	betas := make([]float64, c) // per-column direction update
	colDot := func(u, v *vec.Dense, out []float64) {
		for j := range out {
			out[j] = 0
		}
		for i := 0; i < n; i++ {
			ur, vr := u.Row(i), v.Row(i)
			for j := 0; j < c; j++ {
				out[j] += ur[j] * vr[j]
			}
		}
	}
	colDot(r, r, rz)
	for j := range active {
		active[j] = true
	}

	res := vec.Nrm2(r.Data) / normB
	if history != nil {
		*history = append(*history, res)
	}
	if res <= tol {
		return CGResult{Iterations: 0, Residual: res, Converged: true, MatVecs: matvecs}, nil
	}

	for it := 1; it <= maxIter; it++ {
		a.MulDense(ap.Data, p.Data, c, opts.Workers)
		matvecs++
		colDot(p, ap, pap)
		for j := 0; j < c; j++ {
			if active[j] && pap[j] > 0 {
				alpha[j] = rz[j] / pap[j]
			} else {
				alpha[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			xr, pr, rr, apr := x.Row(i), p.Row(i), r.Row(i), ap.Row(i)
			for j := 0; j < c; j++ {
				xr[j] += alpha[j] * pr[j]
				rr[j] -= alpha[j] * apr[j]
			}
		}
		res = vec.Nrm2(r.Data) / normB
		if history != nil {
			*history = append(*history, res)
		}
		if res <= tol {
			return CGResult{Iterations: it, Residual: res, Converged: true, MatVecs: matvecs}, nil
		}
		rzOld := append([]float64(nil), rz...)
		colDot(r, r, rz)
		for j := 0; j < c; j++ {
			if active[j] && rzOld[j] > 0 {
				betas[j] = rz[j] / rzOld[j]
			} else {
				betas[j] = 0
				active[j] = false
			}
		}
		for i := 0; i < n; i++ {
			pr, rr := p.Row(i), r.Row(i)
			for j := 0; j < c; j++ {
				pr[j] = rr[j] + betas[j]*pr[j]
			}
		}
	}
	return CGResult{Iterations: maxIter, Residual: res, MatVecs: matvecs}, ErrNotConverged
}
