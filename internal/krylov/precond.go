// Package krylov implements the Krylov-subspace and stationary baselines
// the paper compares against: conjugate gradients (single and multi-RHS,
// with the round-robin parallel SpMV the paper uses for its skewed test
// matrix), Notay's Flexible-CG for preconditioners that change between
// applications (such as AsyRGS), Jacobi, and classical Gauss–Seidel.
package krylov

// Preconditioner approximates z ≈ M⁻¹·r for a fixed preconditioning
// operator M. A FlexiblePreconditioner (e.g. a randomized asynchronous
// solver) may apply a *different* operator on every call; plain CG is not
// guaranteed to converge with such preconditioners, which is why the paper
// pairs AsyRGS with Flexible-CG.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the trivial preconditioner z = r.
type Identity struct{}

// Apply implements Preconditioner.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Diagonal is the Jacobi preconditioner z = D⁻¹·r.
type Diagonal struct {
	InvDiag []float64
}

// NewDiagonal builds a Jacobi preconditioner from the matrix diagonal;
// zero diagonal entries pass r through unscaled.
func NewDiagonal(diag []float64) *Diagonal {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d != 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &Diagonal{InvDiag: inv}
}

// Apply implements Preconditioner.
func (p *Diagonal) Apply(z, r []float64) {
	for i := range z {
		z[i] = p.InvDiag[i] * r[i]
	}
}

// PrecondFunc adapts a function to the Preconditioner interface.
type PrecondFunc func(z, r []float64)

// Apply implements Preconditioner.
func (f PrecondFunc) Apply(z, r []float64) { f(z, r) }
