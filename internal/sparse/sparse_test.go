package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

// small3 returns a fixed 3×3 SPD test matrix.
func small3() *CSR {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 4)
	coo.AddSym(0, 1, 1)
	coo.Add(1, 1, 3)
	coo.AddSym(1, 2, -1)
	coo.Add(2, 2, 5)
	return coo.ToCSR()
}

// randomCSR builds a random rows×cols matrix with roughly density·rows·cols
// entries.
func randomCSR(rows, cols int, density float64, seed uint64) *CSR {
	g := rng.NewSequential(seed)
	coo := NewCOO(rows, cols)
	target := int(density * float64(rows) * float64(cols))
	for k := 0; k < target; k++ {
		coo.Add(g.Intn(rows), g.Intn(cols), 2*g.Float64()-1)
	}
	return coo.ToCSR()
}

func TestCOOToCSRSortsAndDedups(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 2, 1)
	coo.Add(0, 0, 2)
	coo.Add(0, 2, 3) // duplicate, must sum to 4
	coo.Add(1, 1, 5)
	m := coo.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("row 0 cols = %v", cols)
	}
	if vals[0] != 2 || vals[1] != 4 {
		t.Fatalf("row 0 vals = %v", vals)
	}
	if m.At(1, 1) != 5 || m.At(1, 0) != 0 {
		t.Fatal("At lookup wrong")
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add should panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	m := randomCSR(17, 13, 0.3, 1)
	d := m.Dense()
	x := make([]float64, 13)
	for i := range x {
		x[i] = float64(i) - 6
	}
	y := make([]float64, 17)
	m.MulVec(y, x)
	for i := 0; i < 17; i++ {
		var want float64
		for j := 0; j < 13; j++ {
			want += d[i*13+j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("MulVec row %d: got %v want %v", i, y[i], want)
		}
	}
}

func TestMulVecParMatchesSerial(t *testing.T) {
	m := randomCSR(500, 500, 0.02, 2)
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, 500)
	m.MulVec(want, x)
	for _, part := range []Partition{PartitionContiguous, PartitionRoundRobin} {
		got := make([]float64, 500)
		m.MulVecPar(got, x, 8, part)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("partition %v row %d: got %v want %v", part, i, got[i], want[i])
			}
		}
	}
}

func TestMulDenseMatchesPerColumn(t *testing.T) {
	m := randomCSR(60, 60, 0.1, 3)
	const c = 5
	x := make([]float64, 60*c)
	for i := range x {
		x[i] = float64(i%11) - 5
	}
	y := make([]float64, 60*c)
	m.MulDense(y, x, c, 4)
	// Column-by-column reference.
	xcol := make([]float64, 60)
	ycol := make([]float64, 60)
	for j := 0; j < c; j++ {
		for i := 0; i < 60; i++ {
			xcol[i] = x[i*c+j]
		}
		m.MulVec(ycol, xcol)
		for i := 0; i < 60; i++ {
			if math.Abs(y[i*c+j]-ycol[i]) > 1e-12 {
				t.Fatalf("MulDense (%d,%d): got %v want %v", i, j, y[i*c+j], ycol[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomCSR(20, 35, 0.15, 4)
	tt := m.Transpose().Transpose()
	if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
		t.Fatal("transpose changed shape or nnz")
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if tt.At(i, j) != vals[k] {
				t.Fatalf("(AT)T differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeDotIdentity(t *testing.T) {
	// (Ax, y) == (x, ATy) — the adjoint identity, on random data.
	f := func(seed uint64) bool {
		m := randomCSR(15, 12, 0.25, seed)
		at := m.Transpose()
		g := rng.NewSequential(seed ^ 0xabc)
		x := make([]float64, 12)
		y := make([]float64, 15)
		for i := range x {
			x[i] = g.Float64() - 0.5
		}
		for i := range y {
			y[i] = g.Float64() - 0.5
		}
		ax := make([]float64, 15)
		m.MulVec(ax, x)
		aty := make([]float64, 12)
		at.MulVec(aty, y)
		var lhs, rhs float64
		for i := range y {
			lhs += ax[i] * y[i]
		}
		for i := range x {
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAgainstDense(t *testing.T) {
	a := randomCSR(9, 7, 0.4, 5)
	b := randomCSR(7, 11, 0.4, 6)
	c := Mul(a, b)
	ad, bd := a.Dense(), b.Dense()
	for i := 0; i < 9; i++ {
		for j := 0; j < 11; j++ {
			var want float64
			for k := 0; k < 7; k++ {
				want += ad[i*7+k] * bd[k*11+j]
			}
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("Mul at (%d,%d): got %v want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestGramIsSymmetricPSD(t *testing.T) {
	a := randomCSR(40, 25, 0.2, 7)
	g := Gram(a)
	if g.Rows != 25 || g.Cols != 25 {
		t.Fatalf("Gram shape %dx%d", g.Rows, g.Cols)
	}
	if !g.IsSymmetric(1e-12) {
		t.Fatal("Gram must be symmetric")
	}
	// PSD: xᵀ(AᵀA)x = ‖Ax‖² ≥ 0 for random x.
	rg := rng.NewSequential(8)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 25)
		for i := range x {
			x[i] = rg.Float64() - 0.5
		}
		if q := g.QuadForm(x); q < -1e-10 {
			t.Fatalf("Gram not PSD: quadform = %v", q)
		}
	}
}

func TestGramEqualsTransposeIdentityProperty(t *testing.T) {
	// (AᵀA)x == Aᵀ(Ax) as operators.
	f := func(seed uint64) bool {
		a := randomCSR(20, 14, 0.25, seed)
		g := Gram(a)
		at := a.Transpose()
		v := make([]float64, 14)
		rg := rng.NewSequential(seed)
		for i := range v {
			v[i] = rg.Float64() - 0.5
		}
		gv := make([]float64, 14)
		g.MulVec(gv, v)
		av := make([]float64, 20)
		a.MulVec(av, v)
		atav := make([]float64, 14)
		at.MulVec(atav, av)
		for i := range gv {
			if math.Abs(gv[i]-atav[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagAndStats(t *testing.T) {
	m := small3()
	d := m.Diag()
	if d[0] != 4 || d[1] != 3 || d[2] != 5 {
		t.Fatalf("Diag = %v", d)
	}
	st := m.Stats()
	if st.Min != 2 || st.Max != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if math.Abs(st.Mean-7.0/3) > 1e-12 {
		t.Fatalf("Stats.Mean = %v", st.Mean)
	}
}

func TestInfFrobNorms(t *testing.T) {
	m := small3()
	if got := m.InfNorm(); got != 6 { // row 2: 1+3+... wait row 1: |1|+|3|+|-1| = 5; row 0: 4+1=5; row 2: 1+5=6
		t.Fatalf("InfNorm = %v, want 6", got)
	}
	var want float64
	for _, v := range m.Vals {
		want += v * v
	}
	if got := m.FrobNorm(); math.Abs(got-math.Sqrt(want)) > 1e-14 {
		t.Fatalf("FrobNorm = %v", got)
	}
}

func TestIdentityAndPrune(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("Identity.MulVec must be a copy")
		}
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1e-14)
	coo.Add(1, 1, 2)
	pruned := coo.ToCSR().Prune(1e-12)
	if pruned.NNZ() != 1 || pruned.At(1, 1) != 2 {
		t.Fatalf("Prune kept %d entries", pruned.NNZ())
	}
}

func TestRowDot(t *testing.T) {
	m := small3()
	x := []float64{1, 2, 3}
	if got := m.RowDot(1, x); got != 1*1+3*2-1*3 {
		t.Fatalf("RowDot = %v, want 4", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := small3()
	c := m.Clone()
	c.Vals[0] = 99
	if m.Vals[0] == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !small3().IsSymmetric(0) {
		t.Fatal("small3 is symmetric")
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 1)
	if coo.ToCSR().IsSymmetric(1e-15) {
		t.Fatal("strictly upper matrix is not symmetric")
	}
	if randomCSR(3, 4, 0.5, 1).IsSymmetric(1) {
		t.Fatal("non-square can never be symmetric")
	}
}

func TestQuadFormMatchesDense(t *testing.T) {
	m := small3()
	x := []float64{1, -2, 0.5}
	ax := make([]float64, 3)
	m.MulVec(ax, x)
	var want float64
	for i := range x {
		want += x[i] * ax[i]
	}
	if got := m.QuadForm(x); math.Abs(got-want) > 1e-14 {
		t.Fatalf("QuadForm = %v, want %v", got, want)
	}
	if got := m.ANorm(x); math.Abs(got-math.Sqrt(want)) > 1e-14 {
		t.Fatalf("ANorm = %v", got)
	}
	if got := m.ANormErr(x, x); got != 0 {
		t.Fatalf("ANormErr(x,x) = %v", got)
	}
}
