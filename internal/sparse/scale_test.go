package sparse

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/asynclinalg/asyrgs/internal/rng"
)

func TestUnitDiagonalScaleBasics(t *testing.T) {
	b := small3()
	a, sc, err := UnitDiagonalScale(b)
	if err != nil {
		t.Fatal(err)
	}
	if !HasUnitDiagonal(a, 1e-14) {
		t.Fatal("scaled matrix must have unit diagonal")
	}
	if !a.IsSymmetric(1e-14) {
		t.Fatal("scaling must preserve symmetry")
	}
	// Check A = D·B·D entrywise.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := sc.D[i] * b.At(i, j) * sc.D[j]
			if math.Abs(a.At(i, j)-want) > 1e-14 {
				t.Fatalf("scaled (%d,%d) = %v want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestUnitDiagonalScaleSolutionEquivalence(t *testing.T) {
	// Solve By = z via the unit-diagonal system Ax = Dz, mapping back with
	// y = Dx — §3's "Non-Unit Diagonal" equivalence made executable.
	b := small3()
	a, sc, err := UnitDiagonalScale(b)
	if err != nil {
		t.Fatal(err)
	}
	z := []float64{1, 2, 3}
	dz := sc.RHSToUnit(z)

	// Tiny dense solves (3×3) done by hand via Cramer-free elimination:
	solve3 := func(m *CSR, rhs []float64) []float64 {
		d := m.Dense()
		x := append([]float64(nil), rhs...)
		// Gaussian elimination without pivoting (matrices are SPD).
		for c := 0; c < 3; c++ {
			for r := c + 1; r < 3; r++ {
				f := d[r*3+c] / d[c*3+c]
				for k := c; k < 3; k++ {
					d[r*3+k] -= f * d[c*3+k]
				}
				x[r] -= f * x[c]
			}
		}
		for r := 2; r >= 0; r-- {
			s := x[r]
			for k := r + 1; k < 3; k++ {
				s -= d[r*3+k] * x[k]
			}
			x[r] = s / d[r*3+r]
		}
		return x
	}
	y := solve3(b, z)
	x := solve3(a, dz)
	back := sc.SolutionFromUnit(x)
	for i := range y {
		if math.Abs(y[i]-back[i]) > 1e-12 {
			t.Fatalf("solution mapping broken: y=%v back=%v", y, back)
		}
	}
	// Round trip to unit coordinates.
	again := sc.SolutionToUnit(back)
	for i := range x {
		if math.Abs(again[i]-x[i]) > 1e-12 {
			t.Fatal("SolutionToUnit is not the inverse of SolutionFromUnit")
		}
	}
}

func TestUnitDiagonalScaleErrors(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -2)
	if _, _, err := UnitDiagonalScale(coo.ToCSR()); !errors.Is(err, ErrNonPositiveDiagonal) {
		t.Fatalf("want ErrNonPositiveDiagonal, got %v", err)
	}
	rect := NewCOO(2, 3).ToCSR()
	if _, _, err := UnitDiagonalScale(rect); err == nil {
		t.Fatal("rectangular matrix must be rejected")
	}
}

func TestScalingANormEquivalenceProperty(t *testing.T) {
	// ‖x‖_A == ‖y‖_B when y = Dx — the invariant that lets the paper
	// analyze only the unit-diagonal case.
	f := func(seed uint64) bool {
		g := rng.NewSequential(seed)
		// Random SPD-ish: diagonally dominant symmetric.
		n := 8
		coo := NewCOO(n, n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 4+g.Float64())
			j := g.Intn(n)
			if j != i {
				coo.AddSym(i, j, g.Float64()-0.5)
			}
		}
		b := coo.ToCSR()
		a, sc, err := UnitDiagonalScale(b)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = g.Float64() - 0.5
		}
		y := sc.SolutionFromUnit(x) // y = Dx
		return math.Abs(a.ANorm(x)-b.ANorm(y)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSCBasics(t *testing.T) {
	m := randomCSR(10, 6, 0.3, 9)
	c := m.ToCSC()
	if c.NNZ() != m.NNZ() {
		t.Fatal("CSC changed nnz")
	}
	for j := 0; j < 6; j++ {
		rows, vals := c.Col(j)
		for k, i := range rows {
			if m.At(i, j) != vals[k] {
				t.Fatalf("CSC col %d row %d mismatch", j, i)
			}
		}
		var want float64
		for k := range vals {
			want += vals[k] * vals[k]
		}
		if math.Abs(c.ColNorm2Sq(j)-want) > 1e-14 {
			t.Fatal("ColNorm2Sq mismatch")
		}
	}
}

func TestCSCMulTransVec(t *testing.T) {
	m := randomCSR(12, 7, 0.3, 10)
	c := m.ToCSC()
	at := m.Transpose()
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.3
	}
	got := make([]float64, 7)
	c.MulTransVec(got, x)
	want := make([]float64, 7)
	at.MulVec(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulTransVec[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestMMRoundTripGeneral(t *testing.T) {
	m := randomCSR(9, 5, 0.4, 11)
	var buf bytes.Buffer
	if err := WriteMM(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
		t.Fatalf("round trip changed shape: %dx%d nnz=%d", back.Rows, back.Cols, back.NNZ())
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if back.At(i, j) != vals[k] {
				t.Fatalf("round trip value (%d,%d)", i, j)
			}
		}
	}
}

func TestMMRoundTripSymmetric(t *testing.T) {
	m := small3()
	var buf bytes.Buffer
	if err := WriteMMSymmetric(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmetric") {
		t.Fatal("header should say symmetric")
	}
	back, err := ReadMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(back.At(i, j)-m.At(i, j)) > 1e-15 {
				t.Fatalf("symmetric round trip (%d,%d): %v vs %v", i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestMMPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 3
`
	m, err := ReadMM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 1 || m.At(0, 1) != 1 || m.At(2, 2) != 1 {
		t.Fatal("pattern symmetric parse wrong")
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (mirrored)", m.NNZ())
	}
}

func TestMMErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // truncated
		"not a header\n",
	}
	for i, in := range cases {
		if _, err := ReadMM(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWriteMMSymmetricRejectsRectangular(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMMSymmetric(&buf, NewCOO(2, 3).ToCSR()); err == nil {
		t.Fatal("rectangular symmetric write should fail")
	}
}

func TestMMVectorArrayRoundTrip(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 3e-7}
	var buf bytes.Buffer
	if err := WriteMMVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMMVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(v) {
		t.Fatalf("length %d, want %d", len(back), len(v))
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("entry %d: %v vs %v", i, back[i], v[i])
		}
	}
}

func TestMMVectorCoordinateCompat(t *testing.T) {
	// A coordinate n×1 matrix written by WriteMM must read as a vector.
	coo := NewCOO(4, 1)
	coo.Add(1, 0, 5)
	coo.Add(3, 0, -2)
	var buf bytes.Buffer
	if err := WriteMM(&buf, coo.ToCSR()); err != nil {
		t.Fatal(err)
	}
	v, err := ReadMMVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 0, -2}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("entry %d: %v vs %v", i, v[i], want[i])
		}
	}
}

func TestMMVectorErrors(t *testing.T) {
	cases := []string{
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n", // not a vector
		"%%MatrixMarket matrix array real general\n3 1\n1\n2\n",       // truncated
		"%%MatrixMarket matrix array complex general\n1 1\n1 0\n",     // bad field
		"junk\n",
	}
	for i, in := range cases {
		if _, err := ReadMMVector(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
