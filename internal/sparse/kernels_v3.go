//go:build amd64.v3

package sparse

// Built with GOAMD64=v3 the compiler emits AVX2/FMA for the unrolled
// bodies, and the wider 8-accumulator dot form keeps enough independent
// chains in flight to saturate the two FMA ports.
const (
	kernelWide = true
	kernelName = "unroll8-v3"
)
