//go:build !amd64.v3

package sparse

// Portable baseline: 4 accumulators is the sweet spot for scalar SSE2
// codegen — wider unrolls spill on the smaller effective register budget.
const (
	kernelWide = false
	kernelName = "unroll4"
)
