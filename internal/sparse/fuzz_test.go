package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMM checks that arbitrary input never panics the MatrixMarket
// parser and that anything it accepts survives a write/read round trip.
func FuzzReadMM(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1\n3 3 4\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMM(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteMM(&buf, m); err != nil {
			t.Fatalf("accepted matrix failed to serialize: %v", err)
		}
		back, err := ReadMM(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted matrix failed: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d", back.Rows, back.Cols, m.Rows, m.Cols)
		}
	})
}

// FuzzReadMMVector covers the vector reader similarly.
func FuzzReadMMVector(f *testing.F) {
	f.Add("%%MatrixMarket matrix array real general\n3 1\n1\n2\n3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 1 1\n2 1 -7\n")
	f.Add("%%MatrixMarket matrix array real general\n1 2\n1\n2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ReadMMVector(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMMVector(&buf, v); err != nil {
			t.Fatalf("accepted vector failed to serialize: %v", err)
		}
		back, err := ReadMMVector(&buf)
		if err != nil || len(back) != len(v) {
			t.Fatalf("vector round trip failed: %v (len %d vs %d)", err, len(back), len(v))
		}
	})
}
