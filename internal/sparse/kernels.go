package sparse

import "github.com/asynclinalg/asyrgs/internal/atomicfloat"

// Inner kernels of the solver hot loop: gather-dot (row · x), scatter-axpy
// (x += g·row) and contiguous axpy (dense multi-RHS row updates). The
// unrolled bodies keep 4 independent accumulators (8 when built with
// GOAMD64=v3, see kernels_v3.go) so the FMA/load chains overlap instead of
// serializing on one register. Unrolling changes the summation order, so
// results agree with the scalar reference to relative rounding bounds, not
// bitwise — kernels_test.go pins those bounds.
//
// Everything here is allocation-free: the warm-path zero-alloc regression
// tests run through these kernels.

// scalarKernels routes the dispatch through the plain scalar loops — the
// ablation baseline of the hotpath benchmark grid. It is read without
// synchronization on every kernel call: toggle it only around benchmarks
// and tests, never while a concurrent solve is running.
var scalarKernels bool

// SetScalarKernels selects the scalar reference loops (true) or the
// unrolled kernels (false, the default). Not safe to flip concurrently
// with running solves; intended for benchmark ablations.
func SetScalarKernels(on bool) { scalarKernels = on }

// ScalarKernels reports whether the scalar ablation baseline is active.
func ScalarKernels() bool { return scalarKernels }

// KernelName identifies the active kernel implementation for benchmark
// labels: "scalar", "unroll4", or "unroll8-v3".
func KernelName() string {
	if scalarKernels {
		return "scalar"
	}
	return kernelName
}

// --- gather dot: sum_k vals[k] * x[idx[k]] ---

func dotRef64(vals []float64, idx []int, x []float64) float64 {
	var s float64
	for k, v := range vals {
		s += v * x[idx[k]]
	}
	return s
}

func dot64(vals []float64, idx []int, x []float64) float64 {
	if scalarKernels {
		return dotRef64(vals, idx, x)
	}
	n := len(vals)
	idx = idx[:n] // bounds-check hint
	var s0, s1, s2, s3 float64
	k := 0
	if kernelWide {
		var s4, s5, s6, s7 float64
		for ; k+8 <= n; k += 8 {
			s0 += vals[k] * x[idx[k]]
			s1 += vals[k+1] * x[idx[k+1]]
			s2 += vals[k+2] * x[idx[k+2]]
			s3 += vals[k+3] * x[idx[k+3]]
			s4 += vals[k+4] * x[idx[k+4]]
			s5 += vals[k+5] * x[idx[k+5]]
			s6 += vals[k+6] * x[idx[k+6]]
			s7 += vals[k+7] * x[idx[k+7]]
		}
		s0, s1, s2, s3 = s0+s4, s1+s5, s2+s6, s3+s7
	}
	for ; k+4 <= n; k += 4 {
		s0 += vals[k] * x[idx[k]]
		s1 += vals[k+1] * x[idx[k+1]]
		s2 += vals[k+2] * x[idx[k+2]]
		s3 += vals[k+3] * x[idx[k+3]]
	}
	for ; k < n; k++ {
		s0 += vals[k] * x[idx[k]]
	}
	return (s0 + s1) + (s2 + s3)
}

// dotRef64Atomic is dotRef64 with atomic (inconsistent-read) loads of x.
func dotRef64Atomic(vals []float64, idx []int, x []float64) float64 {
	var s float64
	for k, v := range vals {
		s += v * atomicfloat.Load(&x[idx[k]])
	}
	return s
}

func dot64Atomic(vals []float64, idx []int, x []float64) float64 {
	if scalarKernels {
		return dotRef64Atomic(vals, idx, x)
	}
	n := len(vals)
	idx = idx[:n]
	var s0, s1, s2, s3 float64
	k := 0
	if kernelWide {
		var s4, s5, s6, s7 float64
		for ; k+8 <= n; k += 8 {
			s0 += vals[k] * atomicfloat.Load(&x[idx[k]])
			s1 += vals[k+1] * atomicfloat.Load(&x[idx[k+1]])
			s2 += vals[k+2] * atomicfloat.Load(&x[idx[k+2]])
			s3 += vals[k+3] * atomicfloat.Load(&x[idx[k+3]])
			s4 += vals[k+4] * atomicfloat.Load(&x[idx[k+4]])
			s5 += vals[k+5] * atomicfloat.Load(&x[idx[k+5]])
			s6 += vals[k+6] * atomicfloat.Load(&x[idx[k+6]])
			s7 += vals[k+7] * atomicfloat.Load(&x[idx[k+7]])
		}
		s0, s1, s2, s3 = s0+s4, s1+s5, s2+s6, s3+s7
	}
	for ; k+4 <= n; k += 4 {
		s0 += vals[k] * atomicfloat.Load(&x[idx[k]])
		s1 += vals[k+1] * atomicfloat.Load(&x[idx[k+1]])
		s2 += vals[k+2] * atomicfloat.Load(&x[idx[k+2]])
		s3 += vals[k+3] * atomicfloat.Load(&x[idx[k+3]])
	}
	for ; k < n; k++ {
		s0 += vals[k] * atomicfloat.Load(&x[idx[k]])
	}
	return (s0 + s1) + (s2 + s3)
}

// --- float32-storage gather dot: float64 accumulation over float32 values ---

func dotRef32(vals []float32, idx []int, x []float64) float64 {
	var s float64
	for k, v := range vals {
		s += float64(v) * x[idx[k]]
	}
	return s
}

func dot32(vals []float32, idx []int, x []float64) float64 {
	if scalarKernels {
		return dotRef32(vals, idx, x)
	}
	n := len(vals)
	idx = idx[:n]
	var s0, s1, s2, s3 float64
	k := 0
	if kernelWide {
		var s4, s5, s6, s7 float64
		for ; k+8 <= n; k += 8 {
			s0 += float64(vals[k]) * x[idx[k]]
			s1 += float64(vals[k+1]) * x[idx[k+1]]
			s2 += float64(vals[k+2]) * x[idx[k+2]]
			s3 += float64(vals[k+3]) * x[idx[k+3]]
			s4 += float64(vals[k+4]) * x[idx[k+4]]
			s5 += float64(vals[k+5]) * x[idx[k+5]]
			s6 += float64(vals[k+6]) * x[idx[k+6]]
			s7 += float64(vals[k+7]) * x[idx[k+7]]
		}
		s0, s1, s2, s3 = s0+s4, s1+s5, s2+s6, s3+s7
	}
	for ; k+4 <= n; k += 4 {
		s0 += float64(vals[k]) * x[idx[k]]
		s1 += float64(vals[k+1]) * x[idx[k+1]]
		s2 += float64(vals[k+2]) * x[idx[k+2]]
		s3 += float64(vals[k+3]) * x[idx[k+3]]
	}
	for ; k < n; k++ {
		s0 += float64(vals[k]) * x[idx[k]]
	}
	return (s0 + s1) + (s2 + s3)
}

func dotRef32Atomic(vals []float32, idx []int, x []float64) float64 {
	var s float64
	for k, v := range vals {
		s += float64(v) * atomicfloat.Load(&x[idx[k]])
	}
	return s
}

func dot32Atomic(vals []float32, idx []int, x []float64) float64 {
	if scalarKernels {
		return dotRef32Atomic(vals, idx, x)
	}
	n := len(vals)
	idx = idx[:n]
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		s0 += float64(vals[k]) * atomicfloat.Load(&x[idx[k]])
		s1 += float64(vals[k+1]) * atomicfloat.Load(&x[idx[k+1]])
		s2 += float64(vals[k+2]) * atomicfloat.Load(&x[idx[k+2]])
		s3 += float64(vals[k+3]) * atomicfloat.Load(&x[idx[k+3]])
	}
	for ; k < n; k++ {
		s0 += float64(vals[k]) * atomicfloat.Load(&x[idx[k]])
	}
	return (s0 + s1) + (s2 + s3)
}

// --- scatter axpy: x[idx[k]] += g * vals[k] (Kaczmarz row update) ---

func scatterRef64(x []float64, vals []float64, idx []int, g float64) {
	for k, v := range vals {
		x[idx[k]] += g * v
	}
}

func scatter64(x []float64, vals []float64, idx []int, g float64) {
	if scalarKernels {
		scatterRef64(x, vals, idx, g)
		return
	}
	n := len(vals)
	idx = idx[:n]
	k := 0
	// Rows are deduplicated (sortRowsAndDedup), so the four writes per
	// step never alias each other and can issue independently.
	for ; k+4 <= n; k += 4 {
		x[idx[k]] += g * vals[k]
		x[idx[k+1]] += g * vals[k+1]
		x[idx[k+2]] += g * vals[k+2]
		x[idx[k+3]] += g * vals[k+3]
	}
	for ; k < n; k++ {
		x[idx[k]] += g * vals[k]
	}
}

// scatter64Atomic is the CAS-add variant for concurrent writers. The CAS
// loop serializes on memory anyway, so there is no unrolled form.
func scatter64Atomic(x []float64, vals []float64, idx []int, g float64) {
	for k, v := range vals {
		atomicfloat.Add(&x[idx[k]], g*v)
	}
}

func scatter32(x []float64, vals []float32, idx []int, g float64) {
	if scalarKernels {
		for k, v := range vals {
			x[idx[k]] += g * float64(v)
		}
		return
	}
	n := len(vals)
	idx = idx[:n]
	k := 0
	for ; k+4 <= n; k += 4 {
		x[idx[k]] += g * float64(vals[k])
		x[idx[k+1]] += g * float64(vals[k+1])
		x[idx[k+2]] += g * float64(vals[k+2])
		x[idx[k+3]] += g * float64(vals[k+3])
	}
	for ; k < n; k++ {
		x[idx[k]] += g * float64(vals[k])
	}
}

func scatter32Atomic(x []float64, vals []float32, idx []int, g float64) {
	for k, v := range vals {
		atomicfloat.Add(&x[idx[k]], g*float64(v))
	}
}

// --- contiguous axpy: dst[i] += a * src[i] (dense multi-RHS row updates) ---

func axpyRef(dst, src []float64, a float64) {
	for i, v := range src {
		dst[i] += a * v
	}
}

// Axpy adds a·src into dst elementwise over len(src) entries; dst must be
// at least that long. This is the streaming c-vector update at the heart
// of MulDense/MulDensePar and the batched dense sweeps.
func Axpy(dst, src []float64, a float64) {
	if scalarKernels {
		axpyRef(dst, src, a)
		return
	}
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// AxpyAtomicRead adds a·src into dst with atomic (inconsistent-read)
// loads of src; the stores to dst stay plain. Used by the asynchronous
// dense sweeps where src is the shared iterate block.
func AxpyAtomicRead(dst, src []float64, a float64) {
	n := len(src)
	dst = dst[:n]
	i := 0
	if !scalarKernels {
		for ; i+4 <= n; i += 4 {
			dst[i] += a * atomicfloat.Load(&src[i])
			dst[i+1] += a * atomicfloat.Load(&src[i+1])
			dst[i+2] += a * atomicfloat.Load(&src[i+2])
			dst[i+3] += a * atomicfloat.Load(&src[i+3])
		}
	}
	for ; i < n; i++ {
		dst[i] += a * atomicfloat.Load(&src[i])
	}
}
