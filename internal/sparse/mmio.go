package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket coordinate-format I/O. Supported headers:
//
//	%%MatrixMarket matrix coordinate real general
//	%%MatrixMarket matrix coordinate real symmetric
//	%%MatrixMarket matrix coordinate pattern general|symmetric (values = 1)
//
// Symmetric files store the lower triangle; ReadMM mirrors off-diagonal
// entries so the returned CSR holds the full matrix, matching how the
// solvers consume it.

// ReadMM parses a MatrixMarket coordinate stream into CSR.
func ReadMM(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", header[2])
	}
	field := header[3] // real | integer | pattern
	if field != "real" && field != "integer" && field != "pattern" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket field %q", field)
	}
	sym := header[4] // general | symmetric
	if sym != "general" && sym != "symmetric" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", sym)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: MatrixMarket stream ended before size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	coo := NewCOO(rows, cols)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: MatrixMarket stream ended after %d of %d entries", read, nnz)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		// MatrixMarket is 1-based.
		i--
		j--
		if sym == "symmetric" && i != j {
			coo.Add(i, j, v)
			coo.Add(j, i, v)
		} else {
			coo.Add(i, j, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket: %w", err)
	}
	return coo.ToCSR(), nil
}

// WriteMM writes the matrix in MatrixMarket coordinate real general format.
func WriteMM(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[k]+1, m.Vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMMSymmetric writes a symmetric matrix storing only the lower
// triangle (including the diagonal). The caller is responsible for m being
// symmetric; ReadMM will mirror the triangle back.
func WriteMMSymmetric(w io.Writer, m *CSR) error {
	if m.Rows != m.Cols {
		return fmt.Errorf("sparse: WriteMMSymmetric needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	lower := 0
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] <= i {
				lower++
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n", m.Rows, m.Cols, lower); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if j := m.ColIdx[k]; j <= i {
				if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, m.Vals[k]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
