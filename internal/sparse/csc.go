package sparse

// CSC is a compressed sparse column matrix. Column j occupies
// RowIdx[ColPtr[j]:ColPtr[j+1]] and Vals[ColPtr[j]:ColPtr[j+1]], with row
// indices strictly increasing within a column. The §8 least-squares
// coordinate-descent solver picks a random column per step and needs its
// non-zero rows; CSC provides them contiguously.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Vals       []float64
}

// ToCSC converts a CSR matrix to CSC form.
func (m *CSR) ToCSC() *CSC {
	t := m.Transpose() // rows of Aᵀ are the columns of A
	return &CSC{
		Rows: m.Rows, Cols: m.Cols,
		ColPtr: t.RowPtr,
		RowIdx: t.ColIdx,
		Vals:   t.Vals,
	}
}

// Col returns the row indices and values of column j, aliasing storage.
func (c *CSC) Col(j int) (rows []int, vals []float64) {
	lo, hi := c.ColPtr[j], c.ColPtr[j+1]
	return c.RowIdx[lo:hi], c.Vals[lo:hi]
}

// NNZ returns the number of stored entries.
func (c *CSC) NNZ() int { return len(c.RowIdx) }

// ColNorm2Sq returns ‖A e_j‖₂², the squared Euclidean norm of column j.
func (c *CSC) ColNorm2Sq(j int) float64 {
	var s float64
	for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
		s += c.Vals[k] * c.Vals[k]
	}
	return s
}

// MulTransVec computes y ← Aᵀx: y has length Cols, x length Rows.
func (c *CSC) MulTransVec(y, x []float64) {
	if len(x) != c.Rows || len(y) != c.Cols {
		panic("sparse: CSC.MulTransVec shape mismatch")
	}
	for j := 0; j < c.Cols; j++ {
		var s float64
		for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
			s += c.Vals[k] * x[c.RowIdx[k]]
		}
		y[j] = s
	}
}
