package sparse

// Float32-value storage views. CSR32/CSC32 share the structure arrays
// (RowPtr/ColIdx resp. ColPtr/RowIdx) with the float64 original and store
// only the values rounded to float32, halving value-array memory
// bandwidth. All arithmetic accumulates in float64: because every float32
// is exactly representable in float64, the view is the *exact* float64
// matrix A32 = fl32(A), and iterations on it converge to the solution of
// A32·x = b. Relative to the original A the achievable residual is
// floored around √nnz·2⁻²⁴ (~1e-6 for typical rows) — the tolerance model
// the f32 conformance tests pin down.

// CSR32 is a float32-value view of a CSR matrix. RowPtr and ColIdx alias
// the parent; Vals is the rounded copy.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float32
}

// NewCSR32 builds the float32-value view of m, sharing its index arrays.
func NewCSR32(m *CSR) *CSR32 {
	vals := make([]float32, len(m.Vals))
	for k, v := range m.Vals {
		vals[k] = float32(v)
	}
	return &CSR32{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Vals: vals}
}

// NNZ returns the number of stored entries.
func (m *CSR32) NNZ() int { return len(m.ColIdx) }

// ValueBytes returns the bytes held by the value array — 4·nnz, half the
// float64 storage the view replaces on the hot path.
func (m *CSR32) ValueBytes() int { return 4 * len(m.Vals) }

// RowDot returns A32_i · x with float64 accumulation.
func (m *CSR32) RowDot(i int, x []float64) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return dot32(m.Vals[lo:hi], m.ColIdx[lo:hi], x)
}

// RowDotAtomic is RowDot with atomic (inconsistent-read) loads of x.
func (m *CSR32) RowDotAtomic(i int, x []float64) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return dot32Atomic(m.Vals[lo:hi], m.ColIdx[lo:hi], x)
}

// RowAxpy adds g·A32_i into x (x[j] += g·a_ij over row i's entries).
func (m *CSR32) RowAxpy(i int, x []float64, g float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	scatter32(x, m.Vals[lo:hi], m.ColIdx[lo:hi], g)
}

// RowAxpyAtomic is RowAxpy with CAS adds for concurrent writers.
func (m *CSR32) RowAxpyAtomic(i int, x []float64, g float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	scatter32Atomic(x, m.Vals[lo:hi], m.ColIdx[lo:hi], g)
}

// MulVec computes y ← A32·x serially.
func (m *CSR32) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: CSR32 MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = m.RowDot(i, x)
	}
}

// MulDensePar computes Y ← A32·X for row-major dense blocks (Y Rows×c,
// X Cols×c), mirroring CSR.MulDensePar.
func (m *CSR32) MulDensePar(ydata, xdata []float64, c, workers int, part Partition) {
	if c == 0 {
		return
	}
	if len(xdata) != m.Cols*c || len(ydata) != m.Rows*c {
		panic("sparse: CSR32 MulDensePar shape mismatch")
	}
	rowLoop := func(start, stride, limit int) {
		for i := start; i < limit; i += stride {
			yrow := ydata[i*c : (i+1)*c]
			for j := range yrow {
				yrow[j] = 0
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				xrow := xdata[m.ColIdx[k]*c : (m.ColIdx[k]+1)*c]
				Axpy(yrow, xrow, float64(m.Vals[k]))
			}
		}
	}
	runRowLoop(m.Rows, workers, part, rowLoop)
}

// BatchRelResiduals mirrors CSR.BatchRelResiduals on the f32 view:
// per-column ‖b−A32·x‖/‖b‖ (absolute when ‖b‖ = 0).
func (m *CSR32) BatchRelResiduals(bdata, xdata []float64, c, workers int) []float64 {
	ax := make([]float64, m.Rows*c)
	m.MulDensePar(ax, xdata, c, workers, PartitionContiguous)
	return batchRelFromAx(bdata, ax, m.Rows, c)
}

// CSC32 is a float32-value view of a CSC matrix, for the column-sweep
// least-squares path. ColPtr and RowIdx alias the parent.
type CSC32 struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Vals       []float32
}

// NewCSC32 builds the float32-value view of c, sharing its index arrays.
func NewCSC32(c *CSC) *CSC32 {
	vals := make([]float32, len(c.Vals))
	for k, v := range c.Vals {
		vals[k] = float32(v)
	}
	return &CSC32{Rows: c.Rows, Cols: c.Cols, ColPtr: c.ColPtr, RowIdx: c.RowIdx, Vals: vals}
}

// Col returns column j's row indices and float32 values.
func (c *CSC32) Col(j int) ([]int, []float32) {
	lo, hi := c.ColPtr[j], c.ColPtr[j+1]
	return c.RowIdx[lo:hi], c.Vals[lo:hi]
}

// ColNorm2Sq returns ‖A32 e_j‖² accumulated in float64.
func (c *CSC32) ColNorm2Sq(j int) float64 {
	var s float64
	for k := c.ColPtr[j]; k < c.ColPtr[j+1]; k++ {
		v := float64(c.Vals[k])
		s += v * v
	}
	return s
}

// MulTransVec computes y ← A32ᵀ·x (y has Cols entries, x has Rows).
func (c *CSC32) MulTransVec(y, x []float64) {
	if len(x) != c.Rows || len(y) != c.Cols {
		panic("sparse: CSC32 MulTransVec shape mismatch")
	}
	for j := 0; j < c.Cols; j++ {
		lo, hi := c.ColPtr[j], c.ColPtr[j+1]
		y[j] = dot32(c.Vals[lo:hi], c.RowIdx[lo:hi], x)
	}
}
