package sparse

import (
	"math"
	"testing"
)

// randomishCSR builds a deterministic sparse matrix with nnzPerRow
// entries per row without external dependencies.
func randomishCSR(rows, cols, nnzPerRow int) *CSR {
	coo := NewCOO(rows, cols)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := 0; i < rows; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := next(cols)
			coo.Add(i, j, 1+float64((i*31+j*7)%11)/10)
		}
	}
	return coo.ToCSR()
}

func TestMulDenseParMatchesColumnwiseMulVec(t *testing.T) {
	const rows, cols, c = 300, 250, 7
	a := randomishCSR(rows, cols, 5)
	x := make([]float64, cols*c)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	for _, tc := range []struct {
		workers int
		part    Partition
	}{
		{1, PartitionContiguous},
		{4, PartitionContiguous},
		{4, PartitionRoundRobin},
		{64, PartitionRoundRobin}, // more workers than useful
	} {
		y := make([]float64, rows*c)
		// Poison the output: the kernel must overwrite, not accumulate.
		for i := range y {
			y[i] = 1e9
		}
		a.MulDensePar(y, x, c, tc.workers, tc.part)
		xcol := make([]float64, cols)
		ycol := make([]float64, rows)
		for j := 0; j < c; j++ {
			for i := 0; i < cols; i++ {
				xcol[i] = x[i*c+j]
			}
			a.MulVec(ycol, xcol)
			for i := 0; i < rows; i++ {
				if d := math.Abs(y[i*c+j] - ycol[i]); d > 1e-12 {
					t.Fatalf("workers=%d part=%v: y[%d,%d] = %g, want %g",
						tc.workers, tc.part, i, j, y[i*c+j], ycol[i])
				}
			}
		}
	}
}

func TestMulDenseParZeroColumns(t *testing.T) {
	a := randomishCSR(10, 10, 2)
	a.MulDensePar(nil, nil, 0, 4, PartitionContiguous) // must not panic
}

func TestBatchRelResiduals(t *testing.T) {
	const n, c = 200, 4
	a := randomishCSR(n, n, 4)
	x := make([]float64, n*c)
	for i := range x {
		x[i] = math.Cos(float64(i) / 3)
	}
	b := make([]float64, n*c)
	a.MulDensePar(b, x, c, 1, PartitionContiguous)
	// Column 0: exact solution (residual 0). Column 2: perturbed b.
	for i := 0; i < n; i++ {
		b[i*c+2] += 0.5
	}
	res := a.BatchRelResiduals(b, x, c, 4)
	if len(res) != c {
		t.Fatalf("got %d residuals, want %d", len(res), c)
	}
	if res[0] > 1e-14 || res[1] > 1e-14 || res[3] > 1e-14 {
		t.Fatalf("exact columns must have zero residual: %v", res)
	}
	if res[2] < 1e-3 {
		t.Fatalf("perturbed column must have a visible residual: %v", res)
	}

	// Cross-check column 2 against the scalar path.
	xcol := make([]float64, n)
	bcol := make([]float64, n)
	for i := 0; i < n; i++ {
		xcol[i] = x[i*c+2]
		bcol[i] = b[i*c+2]
	}
	ax := make([]float64, n)
	a.MulVec(ax, xcol)
	var num, den float64
	for i := range ax {
		d := bcol[i] - ax[i]
		num += d * d
		den += bcol[i] * bcol[i]
	}
	want := math.Sqrt(num / den)
	if math.Abs(res[2]-want) > 1e-12 {
		t.Fatalf("batched residual %g != scalar residual %g", res[2], want)
	}
}

func TestBatchRelResidualsZeroRHS(t *testing.T) {
	a := Identity(8)
	x := make([]float64, 8)
	x[3] = 2
	b := make([]float64, 8) // ‖b‖ = 0: absolute residual
	res := a.BatchRelResiduals(b, x, 1, 1)
	if math.Abs(res[0]-2) > 1e-14 {
		t.Fatalf("zero-RHS residual should be absolute ‖Ax‖ = 2, got %v", res)
	}
}

// BenchmarkSpMM compares the batched kernel against c independent SpMV
// passes — the cost the Prepare/Solve batch path avoids.
func BenchmarkSpMM(b *testing.B) {
	const rows, cols, c = 4000, 4000, 16
	a := randomishCSR(rows, cols, 8)
	x := make([]float64, cols*c)
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	y := make([]float64, rows*c)
	b.Run("MulDensePar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.MulDensePar(y, x, c, 4, PartitionContiguous)
		}
	})
	b.Run("ColumnwiseMulVec", func(b *testing.B) {
		xcol := make([]float64, cols)
		ycol := make([]float64, rows)
		for i := 0; i < b.N; i++ {
			for j := 0; j < c; j++ {
				for r := 0; r < cols; r++ {
					xcol[r] = x[r*c+j]
				}
				a.MulVec(ycol, xcol)
			}
		}
	})
}
