package sparse

import "math"

// QuadForm returns xᵀ·A·x without forming A·x, streaming the matrix once.
// For SPD A this is ‖x‖²_A, the squared A-norm that the paper's analysis
// measures errors in.
func (m *CSR) QuadForm(x []float64) float64 {
	if m.Rows != m.Cols || len(x) != m.Rows {
		panic("sparse: QuadForm needs square A and matching x")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		var row float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			row += m.Vals[k] * x[m.ColIdx[k]]
		}
		s += x[i] * row
	}
	return s
}

// ANorm returns ‖x‖_A = sqrt(xᵀAx). For numerically tiny negative rounding
// of the quadratic form it clamps at zero rather than returning NaN.
func (m *CSR) ANorm(x []float64) float64 {
	q := m.QuadForm(x)
	if q < 0 {
		return 0
	}
	return math.Sqrt(q)
}

// ANormErr returns ‖x−y‖_A.
func (m *CSR) ANormErr(x, y []float64) float64 {
	d := make([]float64, len(x))
	for i := range d {
		d[i] = x[i] - y[i]
	}
	return m.ANorm(d)
}
