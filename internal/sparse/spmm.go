package sparse

import (
	"math"
	"sync"
)

// This file is the batched (multi-vector) SpMV kernel of the Prepare/Solve
// pipeline: Y ← A·X for row-major dense blocks with the same worker and
// row-partitioning controls as MulVecPar. One SpMM streaming the matrix
// once replaces c independent SpMV passes, which is what makes batched
// residual evaluation over many right-hand sides O(nnz + n·c) instead of
// O(c·nnz) row-pointer traffic.

// runRowLoop fans rowLoop(start, stride, limit) over workers under the
// given partition; shared by the f64 and f32 dense kernels. workers <= 1
// (or a small row count) runs serially.
func runRowLoop(rows, workers int, part Partition, rowLoop func(start, stride, limit int)) {
	if workers <= 1 || rows < 128 {
		rowLoop(0, 1, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	switch part {
	case PartitionRoundRobin:
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rowLoop(w, workers, rows)
			}(w)
		}
	default:
		for w := 0; w < workers; w++ {
			lo := w * rows / workers
			hi := (w + 1) * rows / workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				rowLoop(lo, 1, hi)
			}(lo, hi)
		}
	}
	wg.Wait()
}

// MulDensePar computes Y ← A·X for row-major dense blocks (Y is Rows×c,
// X is Cols×c) with the given number of workers and row partitioning
// strategy. It is MulVecPar generalized to c right-hand sides: each
// sparse entry update streams a contiguous c-vector of X and Y.
// workers <= 1 runs serially.
func (m *CSR) MulDensePar(ydata, xdata []float64, c, workers int, part Partition) {
	if c < 0 || len(xdata) != m.Cols*c || len(ydata) != m.Rows*c {
		panic("sparse: MulDensePar shape mismatch")
	}
	if c == 0 {
		return
	}
	// rowLoop is the one kernel body, shared by every partition: rows
	// start, start+stride, … below limit.
	rowLoop := func(start, stride, limit int) {
		for i := start; i < limit; i += stride {
			yrow := ydata[i*c : (i+1)*c]
			for j := range yrow {
				yrow[j] = 0
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				xrow := xdata[m.ColIdx[k]*c : (m.ColIdx[k]+1)*c]
				Axpy(yrow, xrow, m.Vals[k])
			}
		}
	}
	runRowLoop(m.Rows, workers, part, rowLoop)
}

// batchRelFromAx folds B and the precomputed A·X block into per-column
// relative residuals; shared by the f64 and f32 batch paths.
func batchRelFromAx(bdata, ax []float64, rows, c int) []float64 {
	num := make([]float64, c)
	den := make([]float64, c)
	for i := 0; i < rows; i++ {
		brow := bdata[i*c : (i+1)*c]
		axrow := ax[i*c : (i+1)*c]
		for j, bv := range brow {
			d := bv - axrow[j]
			num[j] += d * d
			den[j] += bv * bv
		}
	}
	out := make([]float64, c)
	for j := range out {
		if den[j] == 0 {
			out[j] = math.Sqrt(num[j])
		} else {
			out[j] = math.Sqrt(num[j] / den[j])
		}
	}
	return out
}

// BatchRelResiduals returns the per-column relative residuals
// ‖b_j − A·x_j‖₂/‖b_j‖₂ (absolute when ‖b_j‖₂ = 0) for the row-major
// blocks B (Rows×c) and X (Cols×c), evaluating all columns with a single
// SpMM pass over the matrix. It is the convergence check of the batched
// Solve path: one call per CheckEvery sweeps covers every right-hand side
// in the batch.
func (m *CSR) BatchRelResiduals(bdata, xdata []float64, c, workers int) []float64 {
	if c < 0 || len(bdata) != m.Rows*c || len(xdata) != m.Cols*c {
		panic("sparse: BatchRelResiduals shape mismatch")
	}
	ax := make([]float64, m.Rows*c)
	m.MulDensePar(ax, xdata, c, workers, PartitionContiguous)
	return batchRelFromAx(bdata, ax, m.Rows, c)
}
