package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMMVector parses a MatrixMarket file holding an n×1 vector in either
// array format ("%%MatrixMarket matrix array real general") or coordinate
// format (as written by WriteMM on an n×1 matrix) and returns it densely.
func ReadMMVector(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket vector header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", strings.TrimSpace(header))
	}
	switch fields[2] {
	case "array":
		return readArrayVector(br, fields)
	case "coordinate":
		// Re-assemble the stream for the coordinate reader.
		m, err := ReadMM(io.MultiReader(strings.NewReader(header), br))
		if err != nil {
			return nil, err
		}
		if m.Cols != 1 {
			return nil, fmt.Errorf("sparse: expected an n×1 vector, got %dx%d", m.Rows, m.Cols)
		}
		v := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			_, vals := m.Row(i)
			if len(vals) > 0 {
				v[i] = vals[0]
			}
		}
		return v, nil
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q for vectors", fields[2])
	}
}

func readArrayVector(br *bufio.Reader, header []string) ([]float64, error) {
	if f := header[3]; f != "real" && f != "integer" {
		return nil, fmt.Errorf("sparse: unsupported array field %q", f)
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var rows, cols int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols); err != nil {
			return nil, fmt.Errorf("sparse: bad array size line %q: %v", line, err)
		}
		break
	}
	if cols != 1 {
		return nil, fmt.Errorf("sparse: expected an n×1 array vector, got %dx%d", rows, cols)
	}
	v := make([]float64, 0, rows)
	for len(v) < rows && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		x, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad array entry %q: %v", line, err)
		}
		v = append(v, x)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(v) != rows {
		return nil, fmt.Errorf("sparse: array vector truncated: %d of %d entries", len(v), rows)
	}
	return v, nil
}

// WriteMMVector writes v as an n×1 MatrixMarket array-format matrix, the
// conventional dense-vector interchange format.
func WriteMMVector(w io.Writer, v []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array real general\n%d 1\n", len(v)); err != nil {
		return err
	}
	for _, x := range v {
		if _, err := fmt.Fprintf(bw, "%.17g\n", x); err != nil {
			return err
		}
	}
	return bw.Flush()
}
