package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonPositiveDiagonal is returned by UnitDiagonalScale when some
// diagonal entry is zero or negative, which rules out the symmetric scaling
// (and, for a symmetric matrix, rules out positive definiteness).
var ErrNonPositiveDiagonal = errors.New("sparse: matrix has a non-positive diagonal entry")

// Scaling records the diagonal scaling that turned a general SPD matrix B
// into the unit-diagonal matrix A = D·B·D with D = diag(B)^{-1/2}, together
// with the transformations between the two systems:
//
//	B y = z   ⇔   A x = D z  with  y = D x.
//
// The paper assumes unit diagonal "without loss of generality" via exactly
// this rescaling (§3, Non-Unit Diagonal); Scaling makes the equivalence
// executable and testable.
type Scaling struct {
	// D holds the diagonal of D = diag(B)^{-1/2}.
	D []float64
}

// UnitDiagonalScale returns A = D·B·D with unit diagonal and the Scaling
// that relates solutions. B must be square with strictly positive diagonal.
func UnitDiagonalScale(b *CSR) (*CSR, *Scaling, error) {
	if b.Rows != b.Cols {
		return nil, nil, fmt.Errorf("sparse: UnitDiagonalScale needs a square matrix, got %dx%d", b.Rows, b.Cols)
	}
	diag := b.Diag()
	d := make([]float64, b.Rows)
	for i, v := range diag {
		if v <= 0 {
			return nil, nil, fmt.Errorf("%w: row %d has diagonal %g", ErrNonPositiveDiagonal, i, v)
		}
		d[i] = 1 / math.Sqrt(v)
	}
	a := b.Clone()
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Vals[k] *= d[i] * d[a.ColIdx[k]]
		}
	}
	return a, &Scaling{D: d}, nil
}

// RHSToUnit maps a right-hand side z of B y = z to the right-hand side D z
// of the unit-diagonal system A x = D z.
func (s *Scaling) RHSToUnit(z []float64) []float64 {
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = s.D[i] * v
	}
	return out
}

// SolutionFromUnit maps a solution x of the unit-diagonal system back to
// the solution y = D x of the original system.
func (s *Scaling) SolutionFromUnit(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.D[i] * v
	}
	return out
}

// SolutionToUnit maps a solution y of the original system to the
// unit-diagonal coordinates x = D^{-1} y.
func (s *Scaling) SolutionToUnit(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v / s.D[i]
	}
	return out
}

// HasUnitDiagonal reports whether every diagonal entry of the square matrix
// equals 1 to within tol.
func HasUnitDiagonal(m *CSR, tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i, v := range m.Diag() {
		_ = i
		if math.Abs(v-1) > tol {
			return false
		}
	}
	return true
}
