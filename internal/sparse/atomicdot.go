package sparse

// RowDotAtomic is RowDot with atomic loads of x. The asynchronous solvers
// read the shared iterate while other goroutines commit atomic updates;
// loading atomically keeps those executions free of data races (and costs
// nothing on mainstream architectures, where a 64-bit atomic load is a
// plain aligned load). The values observed are still arbitrarily stale —
// the inconsistent-read model is about ordering, not tearing.
func (m *CSR) RowDotAtomic(i int, x []float64) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return dot64Atomic(m.Vals[lo:hi], m.ColIdx[lo:hi], x)
}
