package sparse

// Equivalence tests for the unrolled hot-loop kernels. Unrolling keeps 4
// (or 8 under GOAMD64=v3) independent accumulators, which reorders the
// summation: results match the scalar reference to a relative rounding
// bound, not bitwise. The bound used here is c·ε·Σ|v·x| with a generous
// constant — any indexing or dispatch bug exceeds it by many orders of
// magnitude. With SetScalarKernels(true) the dispatch must return the
// reference result bit-exactly. The float32 kernels are pinned against
// the float64 reference within the documented 2⁻²⁴ storage-rounding
// model.

import (
	"math"
	"math/rand"
	"testing"
)

// kernelCase builds a random gather-dot instance: n values, indices into
// an m-vector (with repeats, like a sparse row), and the dense vector.
func kernelCase(r *rand.Rand, n, m int) (vals []float64, idx []int, x []float64) {
	vals = make([]float64, n)
	idx = make([]int, n)
	x = make([]float64, m)
	for k := range vals {
		vals[k] = r.NormFloat64()
		idx[k] = r.Intn(m)
	}
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return
}

// absDot is Σ|v_k·x_k|, the scale of the rounding bound.
func absDot(vals []float64, idx []int, x []float64) float64 {
	var s float64
	for k, v := range vals {
		s += math.Abs(v * x[idx[k]])
	}
	return s
}

// dotBound is the acceptable |unrolled − scalar| gap: a few n·ε of the
// absolute-value sum, with an absolute floor for near-zero sums.
func dotBound(n int, scale float64) float64 {
	return 64 * float64(n+1) * 0x1p-52 * (scale + 1)
}

func TestDotKernelsMatchScalarReference(t *testing.T) {
	defer SetScalarKernels(false)
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 257} {
		vals, idx, x := kernelCase(r, n, 4*n+8)
		want := dotRef64(vals, idx, x)
		scale := absDot(vals, idx, x)

		SetScalarKernels(false)
		if got := dot64(vals, idx, x); math.Abs(got-want) > dotBound(n, scale) {
			t.Fatalf("n=%d: dot64=%g ref=%g gap=%g", n, got, want, got-want)
		}
		if got := dot64Atomic(vals, idx, x); math.Abs(got-want) > dotBound(n, scale) {
			t.Fatalf("n=%d: dot64Atomic=%g ref=%g", n, got, want)
		}
		// The scalar toggle must reproduce the reference bit-exactly —
		// that is what makes it a valid ablation baseline.
		SetScalarKernels(true)
		if got := dot64(vals, idx, x); got != want {
			t.Fatalf("n=%d: scalar-dispatch dot64 %g != ref %g", n, got, want)
		}
		if got := dot64Atomic(vals, idx, x); got != dotRef64Atomic(vals, idx, x) {
			t.Fatalf("n=%d: scalar-dispatch dot64Atomic mismatch", n)
		}
	}
}

func TestFloat32DotWithinStorageRoundingModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 4, 9, 64, 257} {
		vals, idx, x := kernelCase(r, n, 4*n+8)
		vals32 := make([]float32, n)
		for k, v := range vals {
			vals32[k] = float32(v)
		}
		want := dotRef64(vals, idx, x)
		scale := absDot(vals, idx, x)
		// Each value is perturbed by ≤ 2⁻²⁴ relative; the dot moves by at
		// most Σ|v·x|·2⁻²⁴ plus accumulation noise.
		bound := scale*3*0x1p-24 + dotBound(n, scale)
		for _, scalar := range []bool{false, true} {
			SetScalarKernels(scalar)
			if got := dot32(vals32, idx, x); math.Abs(got-want) > bound {
				t.Fatalf("n=%d scalar=%v: dot32=%g ref64=%g gap=%g > %g", n, scalar, got, want, got-want, bound)
			}
			if got := dot32Atomic(vals32, idx, x); math.Abs(got-want) > bound {
				t.Fatalf("n=%d scalar=%v: dot32Atomic gap too large", n, scalar)
			}
		}
		SetScalarKernels(false)
		// f64 accumulation over exactly-representable f32 values: the
		// unrolled and scalar f32 kernels see identical summands, so they
		// agree to the reorder bound among themselves.
		a, b := dot32(vals32, idx, x), dotRef32(vals32, idx, x)
		if math.Abs(a-b) > dotBound(n, scale) {
			t.Fatalf("n=%d: dot32 %g vs its own ref %g", n, a, b)
		}
	}
	SetScalarKernels(false)
}

func TestScatterKernelsMatchScalarReference(t *testing.T) {
	defer SetScalarKernels(false)
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 17, 64, 129} {
		vals := make([]float64, n)
		// Scatter targets must be distinct (CSR rows are deduplicated);
		// use a permutation prefix.
		perm := r.Perm(2*n + 4)
		idx := perm[:n]
		for k := range vals {
			vals[k] = r.NormFloat64()
		}
		g := r.NormFloat64()
		want := make([]float64, 2*n+4)
		got := make([]float64, 2*n+4)
		for i := range want {
			v := r.NormFloat64()
			want[i], got[i] = v, v
		}
		scatterRef64(want, vals, idx, g)
		SetScalarKernels(false)
		scatter64(got, vals, idx, g)
		for i := range want {
			// Identical per-slot arithmetic, just issued out of order —
			// bit-exact.
			if got[i] != want[i] {
				t.Fatalf("n=%d: scatter64 slot %d %g != %g", n, i, got[i], want[i])
			}
		}
		// float32 scatter: same update order per slot, f32-rounded values.
		vals32 := make([]float32, n)
		for k, v := range vals {
			vals32[k] = float32(v)
		}
		got32 := make([]float64, len(want))
		ref32 := make([]float64, len(want))
		copy(got32, want)
		copy(ref32, want)
		scatter32(got32, vals32, idx, g)
		SetScalarKernels(true)
		scatter32(ref32, vals32, idx, g)
		for i := range got32 {
			if got32[i] != ref32[i] {
				t.Fatalf("n=%d: scatter32 slot %d mismatch", n, i)
			}
		}
	}
}

func TestAxpyMatchesReference(t *testing.T) {
	defer SetScalarKernels(false)
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 3, 4, 7, 8, 51, 128} {
		src := make([]float64, n)
		want := make([]float64, n)
		got := make([]float64, n)
		for i := range src {
			src[i] = r.NormFloat64()
			v := r.NormFloat64()
			want[i], got[i] = v, v
		}
		a := r.NormFloat64()
		axpyRef(want, src, a)
		SetScalarKernels(false)
		Axpy(got, src, a)
		for i := range want {
			if got[i] != want[i] { // per-slot arithmetic is identical
				t.Fatalf("n=%d: Axpy slot %d %g != %g", n, i, got[i], want[i])
			}
		}
		// AxpyAtomicRead on quiescent data equals the plain form.
		gotAt := make([]float64, n)
		wantAt := make([]float64, n)
		for i := range gotAt {
			v := r.NormFloat64()
			gotAt[i], wantAt[i] = v, v
		}
		axpyRef(wantAt, src, a)
		AxpyAtomicRead(gotAt, src, a)
		for i := range wantAt {
			if gotAt[i] != wantAt[i] {
				t.Fatalf("n=%d: AxpyAtomicRead slot %d mismatch", n, i)
			}
		}
	}
}

// TestCSR32SharesStructure pins the f32 view contract: index arrays are
// aliased (no copy), values are the rounded originals.
func TestCSR32SharesStructure(t *testing.T) {
	a := randomCSR(40, 40, 0.15, 77)
	a32 := NewCSR32(a)
	if &a32.RowPtr[0] != &a.RowPtr[0] || &a32.ColIdx[0] != &a.ColIdx[0] {
		t.Fatal("CSR32 must alias the parent's index arrays")
	}
	for k, v := range a.Vals {
		if a32.Vals[k] != float32(v) {
			t.Fatalf("value %d: %g not rounded to %g", k, a32.Vals[k], float32(v))
		}
	}
	if got, want := a32.ValueBytes(), 4*a.NNZ(); got != want {
		t.Fatalf("ValueBytes=%d want %d", got, want)
	}
	// RowDot through the view matches the f64 row dot within the storage
	// rounding model.
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		want := a.RowDot(i, x)
		scale := absDot(a.Vals[lo:hi], a.ColIdx[lo:hi], x)
		if got := a32.RowDot(i, x); math.Abs(got-want) > scale*3*0x1p-24+1e-12 {
			t.Fatalf("row %d: f32 dot %g vs f64 %g", i, got, want)
		}
	}
}

// FuzzDotKernels cross-checks the unrolled, atomic and f32 dot kernels
// against the scalar reference on fuzz-generated rows.
func FuzzDotKernels(f *testing.F) {
	f.Add(uint64(1), 8)
	f.Add(uint64(42), 65)
	f.Add(uint64(0), 0)
	f.Add(uint64(999), 1023)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 1<<12 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(int64(seed)))
		vals, idx, x := kernelCase(r, n, n+8)
		want := dotRef64(vals, idx, x)
		scale := absDot(vals, idx, x)
		if got := dot64(vals, idx, x); math.Abs(got-want) > dotBound(n, scale) {
			t.Fatalf("dot64 diverged: %g vs %g (n=%d)", got, want, n)
		}
		if got := dot64Atomic(vals, idx, x); math.Abs(got-want) > dotBound(n, scale) {
			t.Fatalf("dot64Atomic diverged: %g vs %g (n=%d)", got, want, n)
		}
		vals32 := make([]float32, n)
		for k, v := range vals {
			vals32[k] = float32(v)
		}
		bound := scale*3*0x1p-24 + dotBound(n, scale)
		if got := dot32(vals32, idx, x); math.Abs(got-want) > bound {
			t.Fatalf("dot32 outside storage-rounding model: %g vs %g (n=%d)", got, want, n)
		}
	})
}

// FuzzScatterKernels cross-checks the unrolled scatter against the
// reference; targets are made distinct as CSR guarantees.
func FuzzScatterKernels(f *testing.F) {
	f.Add(uint64(7), 12)
	f.Add(uint64(3), 129)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 1<<12 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(int64(seed)))
		vals := make([]float64, n)
		for k := range vals {
			vals[k] = r.NormFloat64()
		}
		idx := r.Perm(n + 4)[:n]
		g := r.NormFloat64()
		want := make([]float64, n+4)
		got := make([]float64, n+4)
		for i := range want {
			v := r.NormFloat64()
			want[i], got[i] = v, v
		}
		scatterRef64(want, vals, idx, g)
		scatter64(got, vals, idx, g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("slot %d: %g != %g (n=%d)", i, got[i], want[i], n)
			}
		}
	})
}

// BenchmarkRowDot measures the gather-dot kernel across the dispatch
// grid: scalar baseline, unrolled, and the f32-storage variant. The
// acceptance gate (unrolled beats scalar) is recorded via BENCH_hotpath.
func BenchmarkRowDot(b *testing.B) {
	const n, m = 64, 1 << 16
	r := rand.New(rand.NewSource(5))
	vals, idx, x := kernelCase(r, n, m)
	vals32 := make([]float32, n)
	for k, v := range vals {
		vals32[k] = float32(v)
	}
	var sink float64
	b.Run("scalar", func(b *testing.B) {
		SetScalarKernels(true)
		defer SetScalarKernels(false)
		for i := 0; i < b.N; i++ {
			sink += dot64(vals, idx, x)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += dot64(vals, idx, x)
		}
	})
	b.Run("unrolled-atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += dot64Atomic(vals, idx, x)
		}
	})
	b.Run("f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += dot32(vals32, idx, x)
		}
	})
	if sink == math.Inf(1) {
		b.Fatal("sink overflow")
	}
}

// BenchmarkAxpy measures the contiguous multi-RHS row update.
func BenchmarkAxpy(b *testing.B) {
	const c = 51 // the paper's multi-RHS width
	src := make([]float64, c)
	dst := make([]float64, c)
	for i := range src {
		src[i] = float64(i)
	}
	b.Run("scalar", func(b *testing.B) {
		SetScalarKernels(true)
		defer SetScalarKernels(false)
		for i := 0; i < b.N; i++ {
			Axpy(dst, src, 1e-9)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Axpy(dst, src, 1e-9)
		}
	})
}
