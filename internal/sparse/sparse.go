// Package sparse implements the sparse-matrix substrate of the solver
// library: a COO builder, compressed sparse row (CSR) and column (CSC)
// formats, serial and parallel sparse matrix–vector products, Gustavson
// SpGEMM (used for Gram matrices AᵀA), symmetric unit-diagonal scaling
// D^{-1/2} A D^{-1/2}, row statistics, and MatrixMarket I/O.
//
// The AsyRGS iteration touches one matrix row per step, so CSR with a
// contiguous row slice is the hot layout. The least-squares solver of §8
// additionally needs column access, provided by CSC.
package sparse

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Coord is one explicit entry of a matrix under construction.
type Coord struct {
	Row, Col int
	Val      float64
}

// COO is a coordinate-format builder. Duplicate entries are summed when the
// matrix is compressed to CSR.
type COO struct {
	rows, cols int
	entries    []Coord
}

// NewCOO returns an empty builder for a rows×cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: NewCOO negative dimension %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Add appends entry (i,j) += v. Zero values are kept so that explicit
// structural zeros survive a round trip; callers that want them dropped can
// use CSR.Prune.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	c.entries = append(c.entries, Coord{i, j, v})
}

// AddSym appends (i,j) += v and, when i != j, (j,i) += v. It is the
// convenient builder for symmetric matrices stored fully.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated (pre-deduplication) entries.
func (c *COO) NNZ() int { return len(c.entries) }

// ToCSR compresses the builder into CSR form, summing duplicates and
// sorting column indices within each row.
func (c *COO) ToCSR() *CSR {
	rowCount := make([]int, c.rows+1)
	for _, e := range c.entries {
		rowCount[e.Row+1]++
	}
	for i := 0; i < c.rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	colIdx := make([]int, len(c.entries))
	vals := make([]float64, len(c.entries))
	next := make([]int, c.rows)
	copy(next, rowCount[:c.rows])
	for _, e := range c.entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		vals[p] = e.Val
		next[e.Row]++
	}
	m := &CSR{Rows: c.rows, Cols: c.cols, RowPtr: rowCount, ColIdx: colIdx, Vals: vals}
	m.sortRowsAndDedup()
	return m
}

// CSR is a compressed sparse row matrix. Row i occupies
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Vals[RowPtr[i]:RowPtr[i+1]], with
// column indices strictly increasing within a row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Row returns the column indices and values of row i, aliasing storage.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// At returns element (i,j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// sortRowsAndDedup sorts each row by column and merges duplicates in place.
func (m *CSR) sortRowsAndDedup() {
	newPtr := make([]int, m.Rows+1)
	w := 0
	type pair struct {
		col int
		val float64
	}
	var scratch []pair
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		scratch = scratch[:0]
		for k := lo; k < hi; k++ {
			scratch = append(scratch, pair{m.ColIdx[k], m.Vals[k]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].col < scratch[b].col })
		start := w
		for _, p := range scratch {
			if w > start && m.ColIdx[w-1] == p.col {
				m.Vals[w-1] += p.val
				continue
			}
			m.ColIdx[w] = p.col
			m.Vals[w] = p.val
			w++
		}
		newPtr[i+1] = w
	}
	m.RowPtr = newPtr
	m.ColIdx = m.ColIdx[:w]
	m.Vals = m.Vals[:w]
}

// Prune returns a copy with entries of magnitude <= tol removed.
func (m *CSR) Prune(tol float64) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if math.Abs(vals[k]) > tol {
				out.ColIdx = append(out.ColIdx, c)
				out.Vals = append(out.Vals, vals[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]float64(nil), m.Vals...),
	}
	return c
}

// MulVec computes y ← A·x serially. len(x) must equal Cols and len(y) Rows.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch A=%dx%d len(x)=%d len(y)=%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = m.RowDot(i, x)
	}
}

// RowDot returns A_i · x, the inner product of row i with x, through the
// unrolled gather-dot kernel (see kernels.go).
func (m *CSR) RowDot(i int, x []float64) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return dot64(m.Vals[lo:hi], m.ColIdx[lo:hi], x)
}

// RowAxpy adds g·A_i into x (x[j] += g·a_ij over row i's entries) — the
// Kaczmarz-style scatter update, through the unrolled scatter kernel.
func (m *CSR) RowAxpy(i int, x []float64, g float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	scatter64(x, m.Vals[lo:hi], m.ColIdx[lo:hi], g)
}

// RowAxpyAtomic is RowAxpy with CAS adds for concurrent writers.
func (m *CSR) RowAxpyAtomic(i int, x []float64, g float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	scatter64Atomic(x, m.Vals[lo:hi], m.ColIdx[lo:hi], g)
}

// Partition selects how rows are assigned to workers in MulVecPar.
type Partition int

const (
	// PartitionContiguous splits rows into equal contiguous blocks. It is
	// cache friendly but load-imbalanced for skewed row sizes.
	PartitionContiguous Partition = iota
	// PartitionRoundRobin assigns row i to worker i mod P. The paper uses
	// round-robin for its CG runs because the social-media Gram matrix has
	// "very little to no structure", making contiguous blocking useless
	// while heavy rows cluster arbitrarily.
	PartitionRoundRobin
)

// MulVecPar computes y ← A·x with the given number of workers and row
// partitioning strategy. workers <= 1 runs serially.
func (m *CSR) MulVecPar(y, x []float64, workers int, part Partition) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("sparse: MulVecPar shape mismatch")
	}
	if workers <= 1 || m.Rows < 256 {
		m.MulVec(y, x)
		return
	}
	if workers > runtime.GOMAXPROCS(0)*4 {
		workers = runtime.GOMAXPROCS(0) * 4
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	var wg sync.WaitGroup
	switch part {
	case PartitionRoundRobin:
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < m.Rows; i += workers {
					y[i] = m.RowDot(i, x)
				}
			}(w)
		}
	default:
		chunk := (m.Rows + workers - 1) / workers
		for lo := 0; lo < m.Rows; lo += chunk {
			hi := lo + chunk
			if hi > m.Rows {
				hi = m.Rows
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					y[i] = m.RowDot(i, x)
				}
			}(lo, hi)
		}
	}
	wg.Wait()
}

// MulDense computes Y ← A·X for row-major dense blocks: Y is Rows×c and X
// is Cols×c. Row-major storage means each sparse entry update streams a
// contiguous c-vector, the multi-RHS locality trick from the paper's §9.
// workers <= 1 runs serially.
func (m *CSR) MulDense(ydata []float64, xdata []float64, c int, workers int) {
	if len(xdata) != m.Cols*c || len(ydata) != m.Rows*c {
		panic("sparse: MulDense shape mismatch")
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yrow := ydata[i*c : (i+1)*c]
			for j := range yrow {
				yrow[j] = 0
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				xrow := xdata[m.ColIdx[k]*c : (m.ColIdx[k]+1)*c]
				Axpy(yrow, xrow, m.Vals[k])
			}
		}
	}
	if workers <= 1 || m.Rows < 128 {
		body(0, m.Rows)
		return
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m.Rows / workers
		hi := (w + 1) * m.Rows / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns Aᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	colCount := make([]int, m.Cols+1)
	for _, j := range m.ColIdx {
		colCount[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		colCount[j+1] += colCount[j]
	}
	t := &CSR{Rows: m.Cols, Cols: m.Rows,
		RowPtr: colCount,
		ColIdx: make([]int, m.NNZ()),
		Vals:   make([]float64, m.NNZ()),
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Vals[p] = m.Vals[k]
			next[j]++
		}
	}
	return t
}

// Diag returns the diagonal of the matrix as a dense vector (length
// min(Rows, Cols)); missing diagonal entries are zero.
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose to within
// tol in absolute value on every entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		// Structures can legitimately differ when near-zero values appear
		// on one side only; fall through to the value comparison.
		_ = t
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if math.Abs(vals[k]-t.At(i, j)) > tol {
				return false
			}
		}
		tcols, tvals := t.Row(i)
		for k, j := range tcols {
			if math.Abs(tvals[k]-m.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// InfNorm returns ‖A‖∞ = max_i Σ_j |A_ij|.
func (m *CSR) InfNorm() float64 {
	var max float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += math.Abs(m.Vals[k])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// FrobNorm returns the Frobenius norm of the matrix.
func (m *CSR) FrobNorm() float64 {
	var s float64
	for _, v := range m.Vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// RowStats summarises the per-row non-zero counts; the paper's reference
// scenario is characterised by C1 = Min, C2 = Max with C2/C1 small, while
// its experimental matrix is deliberately skewed (Max ≫ Mean).
type RowStats struct {
	Min, Max int
	Mean     float64
}

// Stats returns the row non-zero statistics of the matrix.
func (m *CSR) Stats() RowStats {
	if m.Rows == 0 {
		return RowStats{}
	}
	st := RowStats{Min: m.RowPtr[1] - m.RowPtr[0]}
	total := 0
	for i := 0; i < m.Rows; i++ {
		nz := m.RowPtr[i+1] - m.RowPtr[i]
		total += nz
		if nz < st.Min {
			st.Min = nz
		}
		if nz > st.Max {
			st.Max = nz
		}
	}
	st.Mean = float64(total) / float64(m.Rows)
	return st
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Vals:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Vals[i] = 1
	}
	return m
}

// Dense expands the matrix to a row-major dense slice of length Rows*Cols.
// Intended for tests on small matrices.
func (m *CSR) Dense() []float64 {
	d := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i*m.Cols+m.ColIdx[k]] = m.Vals[k]
		}
	}
	return d
}
