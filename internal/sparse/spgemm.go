package sparse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// gramCalls counts Gram-matrix constructions. The Prepare/Solve tests use
// the delta to prove that cached prepared state never re-runs SpGEMM.
var gramCalls atomic.Uint64

// GramCount returns the number of Gram-matrix (SpGEMM) constructions
// performed so far in this process.
func GramCount() uint64 { return gramCalls.Load() }

// Mul computes C = A·B with Gustavson's row-by-row algorithm using a dense
// sparse-accumulator (SPA) per worker. It is the workhorse behind Gram
// matrix construction (AᵀA) for the synthetic social-media workload and the
// normal-equation view of the §8 least-squares solver.
func Mul(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	type rowResult struct {
		cols []int
		vals []float64
	}
	results := make([]rowResult, a.Rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.Rows / workers
		hi := (w + 1) * a.Rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			spa := make([]float64, b.Cols)
			mark := make([]int, b.Cols)
			for i := range mark {
				mark[i] = -1
			}
			var touched []int
			for i := lo; i < hi; i++ {
				touched = touched[:0]
				for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
					j := a.ColIdx[ka]
					av := a.Vals[ka]
					for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
						col := b.ColIdx[kb]
						if mark[col] != i {
							mark[col] = i
							spa[col] = 0
							touched = append(touched, col)
						}
						spa[col] += av * b.Vals[kb]
					}
				}
				sortInts(touched)
				cols := make([]int, len(touched))
				vals := make([]float64, len(touched))
				copy(cols, touched)
				for k, c := range touched {
					vals[k] = spa[c]
				}
				results[i] = rowResult{cols, vals}
			}
		}(lo, hi)
	}
	wg.Wait()

	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	total := 0
	for i := range results {
		total += len(results[i].cols)
		out.RowPtr[i+1] = total
	}
	out.ColIdx = make([]int, total)
	out.Vals = make([]float64, total)
	for i, r := range results {
		copy(out.ColIdx[out.RowPtr[i]:], r.cols)
		copy(out.Vals[out.RowPtr[i]:], r.vals)
	}
	return out
}

// Gram returns AᵀA, the Gram matrix of the columns of A. The paper's test
// system is exactly such a matrix: the Gram matrix of a term-frequency
// document matrix.
func Gram(a *CSR) *CSR {
	gramCalls.Add(1)
	return Mul(a.Transpose(), a)
}

// sortInts is an insertion/quick hybrid tuned for the short, nearly sorted
// index lists SpGEMM produces. Falls back to a simple quicksort.
func sortInts(a []int) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	pivot := a[len(a)/2]
	lt, gt := 0, len(a)-1
	i := 0
	for i <= gt {
		switch {
		case a[i] < pivot:
			a[i], a[lt] = a[lt], a[i]
			lt++
			i++
		case a[i] > pivot:
			a[i], a[gt] = a[gt], a[i]
			gt--
		default:
			i++
		}
	}
	sortInts(a[:lt])
	sortInts(a[gt+1:])
}
