// Social-media regression: the paper's motivating workload. Builds a
// synthetic term–document Gram matrix with the skewed row-size profile of
// the real 120k×120k system, solves a block of label-regression
// right-hand sides with synchronous RGS, asynchronous AsyRGS, and CG, and
// prints the Figure-1-style residual trajectories. Big-data tasks need low
// accuracy (~1e-2): the randomized sweeps get there first.
//
//	go run ./examples/socialmedia
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	const terms = 1200
	const labels = 8 // the paper solves 51 label columns together

	gram, termDoc := asyrgs.SocialGram(asyrgs.DefaultSocialGram(terms, 99))
	fmt.Println(asyrgs.DescribeMatrix("gram", gram))
	fmt.Println(asyrgs.DescribeMatrix("term-doc", termDoc))

	// Interference parameters of the unit-diagonal scaling, as in §9.
	scaled, _, err := asyrgs.UnitDiagonalScale(gram)
	if err != nil {
		log.Fatal(err)
	}
	n := float64(terms)
	fmt.Printf("ρ·n = %.1f, ρ₂·n = %.1f (paper's matrix: 231 and 8.9)\n\n",
		asyrgs.Rho(scaled)*n, asyrgs.Rho2(scaled)*n)

	b := asyrgs.MultiRHS(terms, labels, 100)
	workers := runtime.GOMAXPROCS(0)
	const sweeps = 30

	// Synchronous Randomized Gauss–Seidel trajectory.
	rgs, err := asyrgs.NewSolver(gram, asyrgs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	xr := asyrgs.NewDense(terms, labels)
	rgsTraj := make([]float64, sweeps+1)
	rgsTraj[0] = rgs.ResidualDense(xr, b)
	rgsStart := time.Now()
	for s := 1; s <= sweeps; s++ {
		rgs.SweepsDense(xr, b, 1)
		rgsTraj[s] = rgs.ResidualDense(xr, b)
	}
	rgsTime := time.Since(rgsStart)

	// Asynchronous AsyRGS with the same direction stream.
	asy, err := asyrgs.NewSolver(gram, asyrgs.Options{Seed: 1, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	xa := asyrgs.NewDense(terms, labels)
	asyStart := time.Now()
	asy.AsyncSweepsDense(xa, b, sweeps)
	asyTime := time.Since(asyStart)
	asyRes := asy.ResidualDense(xa, b)

	// CG trajectory on the same block.
	xc := asyrgs.NewDense(terms, labels)
	var cgTraj []float64
	cgStart := time.Now()
	_, _ = asyrgs.CGDense(gram, xc, b, asyrgs.CGOptions{
		Tol: 1e-30, MaxIter: sweeps, Workers: workers,
		Partition: asyrgs.PartitionRoundRobin,
	}, &cgTraj)
	cgTime := time.Since(cgStart)

	fmt.Printf("%-8s %-14s %-14s\n", "sweep", "RGS", "CG")
	for s := 0; s <= sweeps; s += 5 {
		cg := cgTraj[len(cgTraj)-1]
		if s < len(cgTraj) {
			cg = cgTraj[s]
		}
		fmt.Printf("%-8d %-14.3e %-14.3e\n", s, rgsTraj[s], cg)
	}
	fmt.Printf("\nafter %d sweeps:\n", sweeps)
	fmt.Printf("  sync RGS : residual %.3e in %v (1 thread)\n", rgsTraj[sweeps], rgsTime.Round(time.Millisecond))
	fmt.Printf("  AsyRGS   : residual %.3e in %v (%d threads, no locks, no barriers)\n", asyRes, asyTime.Round(time.Millisecond), workers)
	fmt.Printf("  CG       : residual %.3e in %v (%d threads)\n", cgTraj[len(cgTraj)-1], cgTime.Round(time.Millisecond), workers)
	fmt.Println("\nthe big-data regime needs ~1e-2: note where each method crosses it.")
}
