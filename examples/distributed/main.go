// Distributed-memory emulation: the paper's future-work deployment. Each
// emulated rank owns a block of coordinates, iterates restricted
// Randomized Gauss–Seidel against its private (stale) copy of the iterate,
// and ships updates over bounded message queues — no shared memory at all.
// The queue capacity is the physical realisation of the delay bound τ:
// sweep it and watch the staleness/throughput trade-off.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	const n = 4000
	a := asyrgs.RandomSPD(n, 8, 1.5, 31)
	fmt.Println(asyrgs.DescribeMatrix("system", a))
	b, xstar := asyrgs.RHSForSolution(a, 32)
	normX := a.ANorm(xstar)

	const ranks = 8
	const sweeps = 10
	fmt.Printf("\n%d ranks, %d sweeps per round, message-passing only\n\n", ranks, sweeps)
	fmt.Printf("%-10s %-14s %-14s %-12s %-10s %-10s\n",
		"queue-cap", "rel residual", "A-norm err", "messages", "backlog", "time")
	for _, cap := range []int{1, 4, 16, 64, 256} {
		x := make([]float64, n)
		start := time.Now()
		res, err := asyrgs.DistSolve(a, x, b, sweeps, asyrgs.DistConfig{
			Workers: ranks, QueueCap: cap, Seed: 33,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-14.3e %-14.3e %-12d %-10d %-10v\n",
			cap, res.Residual, a.ANormErr(x, xstar)/normX,
			res.MessagesSent, res.MaxQueueLen, time.Since(start).Round(time.Millisecond))
	}

	// Rounds-to-tolerance with a mid-size budget.
	x := make([]float64, n)
	start := time.Now()
	res, rounds, err := asyrgs.DistSolveToTol(a, x, b, 1e-8, sweeps, 100, asyrgs.DistConfig{
		Workers: ranks, QueueCap: 16, Seed: 34,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nto 1e-8: %d rounds of %d sweeps in %v (residual %.2e)\n",
		rounds, sweeps, time.Since(start).Round(time.Millisecond), res.Residual)
	fmt.Println("each round boundary is a global synchronization — the distributed\nversion of the paper's occasional-synchronization scheme.")
}
