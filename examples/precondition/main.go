// Flexible-CG + AsyRGS: the paper's recommended configuration for high
// accuracy. AsyRGS alone converges like a basic iteration (slow past
// moderate accuracy); wrapped as a flexible preconditioner it supplies
// cheap, perfectly parallel error smoothing while FCG supplies the Krylov
// rate. Reproduces the Table 1 trade-off: more inner sweeps → fewer outer
// iterations but more matrix work; ~2 inner sweeps is the sweet spot.
//
//	go run ./examples/precondition
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	const terms = 1000
	gram, _ := asyrgs.SocialGram(asyrgs.DefaultSocialGram(terms, 5))
	fmt.Println(asyrgs.DescribeMatrix("gram", gram))
	b := asyrgs.RandomRHS(terms, 6)
	workers := runtime.GOMAXPROCS(0)
	const tol = 1e-8

	fmt.Printf("\nFCG + AsyRGS preconditioner, tol=%.0e, %d threads\n", tol, workers)
	fmt.Printf("%-8s %-8s %-16s %-12s %-12s\n", "inner", "outer", "outer*(inner+1)", "time", "mat-ops/s")
	type row struct {
		inner, outer int
		d            time.Duration
	}
	var best row
	for _, inner := range []int{30, 10, 5, 2, 1} {
		s, err := asyrgs.NewSolver(gram, asyrgs.Options{Workers: workers, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		pre := asyrgs.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, inner) })
		x := make([]float64, terms)
		start := time.Now()
		res, err := asyrgs.FlexibleCG(gram, x, b, pre, asyrgs.FCGOptions{
			Tol: tol, MaxIter: 4000, Workers: workers,
			Partition: asyrgs.PartitionRoundRobin,
		})
		d := time.Since(start)
		if err != nil {
			log.Fatalf("inner=%d: %v (%+v)", inner, err, res)
		}
		matOps := res.Iterations * (inner + 1)
		fmt.Printf("%-8d %-8d %-16d %-12v %-12.1f\n",
			inner, res.Iterations, matOps, d.Round(time.Millisecond), float64(matOps)/d.Seconds())
		if best.d == 0 || d < best.d {
			best = row{inner, res.Iterations, d}
		}
	}
	fmt.Printf("\nfastest: %d inner sweeps (%v, %d outer iterations)\n", best.inner, best.d.Round(time.Millisecond), best.outer)

	// Contrast: plain CG without preconditioning.
	x := make([]float64, terms)
	start := time.Now()
	res, err := asyrgs.CG(gram, x, b, asyrgs.CGOptions{
		Tol: tol, MaxIter: 40_000, Workers: workers,
		Partition: asyrgs.PartitionRoundRobin,
	})
	if err != nil {
		fmt.Printf("plain CG: not converged after %d iterations (residual %.1e)\n", res.Iterations, res.Residual)
	} else {
		fmt.Printf("plain CG: %d iterations in %v\n", res.Iterations, time.Since(start).Round(time.Millisecond))
	}
}
