// Theory bounds: evaluate the paper's convergence guarantees (Theorems
// 2–4) on a reference-scenario matrix, run the *enforced* bounded-delay
// simulator under worst-case, uniform and geometric delay models, and
// print measured error reduction next to the analytical bound. Shows the
// three headline analytical facts:
//
//  1. the bounds hold (measured ≤ bound) under the adversarial model;
//
//  2. they are pessimistic — typical delays behave almost synchronously;
//
//  3. the step size β̃ = 1/(1+2ρτ) keeps the bound non-vacuous for
//     delays where β = 1 has no guarantee at all.
//
//     go run ./examples/theorybounds
package main

import (
	"fmt"
	"log"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	// Unit-diagonal 2D Laplacian: the paper's reference scenario with
	// ρ·n = 2 exactly.
	const grid = 24
	lap := asyrgs.Laplacian2D(grid, grid)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		log.Fatal(err)
	}
	n := a.Rows
	est := asyrgs.EstimateSpectrum(a, 2*n, 1)
	rho := asyrgs.Rho(a)
	rho2 := asyrgs.Rho2(a)
	fmt.Println(asyrgs.DescribeMatrix("laplacian2d (unit diagonal)", a))
	fmt.Printf("λmin=%.4g λmax=%.4g κ=%.1f ρ·n=%.2f ρ₂·n=%.2f\n\n",
		est.LambdaMin, est.LambdaMax, est.Cond, rho*float64(n), rho2*float64(n))

	const sweeps = 60
	m := sweeps * n
	b, xstar := asyrgs.RHSForSolution(a, 2)
	x0 := make([]float64, n)

	measure := func(model asyrgs.DelayModel, beta float64, consistent bool) float64 {
		var tr asyrgs.SimTrace
		cfg := asyrgs.SimConfig{Seed: 3, Beta: beta, Stride: m}
		if consistent {
			tr = asyrgs.SimulateConsistent(a, b, x0, xstar, m, model, cfg)
		} else {
			tr = asyrgs.SimulateInconsistent(a, b, x0, xstar, m, model, cfg)
		}
		return tr.Errors[len(tr.Errors)-1] / tr.Errors[0]
	}

	fmt.Printf("%-6s %-10s %-22s %-14s %-14s\n", "tau", "beta", "delay model", "measured E/E0", "bound")
	for _, tau := range []int{4, 16, 64} {
		betaOpt := asyrgs.OptimalBeta(rho, tau)
		p := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, tau, betaOpt)
		bound := p.ConsistentBound(m)

		// 1. Worst case, consistent read, optimal step size.
		worst := measure(asyrgs.FixedDelay{T: tau}, betaOpt, true)
		fmt.Printf("%-6d %-10.3f %-22s %-14.3e %-14.3e\n", tau, betaOpt, "fixed (adversarial)", worst, bound)

		// 2. Probabilistic delays at the same τ: far better than the
		// worst case the theorem must cover.
		geo := measure(asyrgs.GeometricDelay{T: tau, P0: 0.5, Seed: 4}, betaOpt, true)
		fmt.Printf("%-6s %-10s %-22s %-14.3e %-14s\n", "", "", "geometric (typical)", geo, "(same bound)")

		// 3. β = 1 at this τ: Theorem 2 needs 2ρτ < 1.
		nu1 := 1 - 2*rho*float64(tau)
		guarantee := "none (2ρτ ≥ 1)"
		if nu1 > 0 {
			p1 := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, tau, 1)
			guarantee = fmt.Sprintf("%.3e", p1.ConsistentBound(m))
		}
		one := measure(asyrgs.FixedDelay{T: tau}, 1, true)
		fmt.Printf("%-6s %-10.3f %-22s %-14.3e %-14s\n", "", 1.0, "fixed, β=1", one, guarantee)
		fmt.Println()
	}

	// Inconsistent-read model (Theorem 4): β must be < 1.
	fmt.Println("inconsistent-read model (Theorem 4):")
	fmt.Printf("%-6s %-10s %-14s %-14s\n", "tau", "beta", "measured", "bound")
	for _, tau := range []int{4, 16} {
		beta := 1 / (2 + rho2*float64(tau)*float64(tau))
		p := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, tau, beta)
		got := measure(asyrgs.FixedDelay{T: tau}, beta, false)
		fmt.Printf("%-6d %-10.3f %-14.3e %-14.3e\n", tau, beta, got, p.InconsistentBound(m))
	}

	// How many synchronize-and-restart epochs guarantee a 1e-3 error
	// reduction (the scheme of the Theorem 2 discussion)?
	tau := 16
	p := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, tau, asyrgs.OptimalBeta(rho, tau))
	fmt.Printf("\noccasional synchronization: %d epochs of ≥ max(n, T₀) iterations guarantee ‖e‖_A ≤ 1e-3·‖e₀‖_A (τ=%d)\n",
		p.OuterEpochs(1e-3), tau)
}
