// Quickstart: solve a sparse SPD system with AsyRGS using all CPUs, then
// verify against conjugate gradients.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	// A 3D Poisson problem: the canonical "reference scenario" matrix of
	// the paper (bounded row sizes, SPD, no diagonal dominance needed —
	// but this one happens to be dominant too).
	const side = 20
	a := asyrgs.Laplacian3D(side, side, side)
	n := a.Rows
	fmt.Println(asyrgs.DescribeMatrix("poisson3d", a))

	// A right-hand side with a known solution so we can report true error.
	b, xstar := asyrgs.RHSForSolution(a, 1)

	// AsyRGS: every core races over the same iterate with atomic
	// single-coordinate updates; directions come from a counter-based
	// random stream so the run is reproducible for a fixed seed.
	workers := runtime.GOMAXPROCS(0)
	solver, err := asyrgs.NewSolver(a, asyrgs.Options{
		Workers:      workers,
		Seed:         7,
		MeasureDelay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, n)
	res, err := solver.SolveAsync(x, b, 1e-6, 600, 5)
	if err != nil {
		log.Fatalf("AsyRGS did not converge: %+v", res)
	}
	fmt.Printf("AsyRGS  (%2d workers): %3d sweeps, residual %.2e, observed τ̂=%d\n",
		workers, res.Sweeps, res.Residual, res.ObservedTau)
	fmt.Printf("         true relative A-norm error: %.2e\n",
		a.ANormErr(x, xstar)/a.ANorm(xstar))

	// Cross-check with CG.
	xcg := make([]float64, n)
	cgRes, err := asyrgs.CG(a, xcg, b, asyrgs.CGOptions{
		Tol: 1e-6, MaxIter: 2000, Workers: workers,
		Partition: asyrgs.PartitionRoundRobin,
	})
	if err != nil {
		log.Fatalf("CG did not converge: %+v", cgRes)
	}
	fmt.Printf("CG      (%2d workers): %3d iterations, residual %.2e\n",
		workers, cgRes.Iterations, cgRes.Residual)

	// The bound-optimal asynchronous step size for this matrix (Theorem 3):
	rho := asyrgs.Rho(a)
	fmt.Printf("theory: ρ·n = %.2f, optimal β̃ for τ=%d is %.3f\n",
		rho*float64(n), workers, asyrgs.OptimalBeta(rho, workers))
}
