// Overdetermined least squares (§8 of the paper): fit a sparse linear
// model by asynchronous randomized coordinate descent — iteration (21),
// which is AsyRGS applied implicitly to the normal equations AᵀA x = Aᵀb
// without ever forming AᵀA. Compares the sequential iteration (20), the
// asynchronous variant (Theorem 5 requires β < 1), and randomized Kaczmarz
// on the same consistent system.
//
//	go run ./examples/leastsq
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	asyrgs "github.com/asynclinalg/asyrgs"
)

func main() {
	const rows, cols = 8000, 2000
	a := asyrgs.RandomOverdetermined(rows, cols, 8, 21)
	fmt.Println(asyrgs.DescribeMatrix("design matrix", a))
	b := asyrgs.RandomRHS(rows, 22) // generically inconsistent: true LS problem
	workers := runtime.GOMAXPROCS(0)
	const sweeps = 60

	run := func(name string, w int, beta float64) []float64 {
		s, err := asyrgs.NewLSQ(a, asyrgs.LSQOptions{Workers: w, Seed: 23, Beta: beta})
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, cols)
		start := time.Now()
		s.Iterations(x, b, sweeps*cols)
		d := time.Since(start)
		fmt.Printf("%-22s %2d workers, β=%.2f: ‖Aᵀ(b−Ax)‖=%.3e  ‖b−Ax‖=%.4f  (%v)\n",
			name, w, beta, s.LSQResidual(x, b), s.ResidualNorm(x, b), d.Round(time.Millisecond))
		return x
	}

	fmt.Printf("\n%d sweeps of randomized coordinate descent:\n", sweeps)
	xSeq := run("sequential (it. 20)", 1, 1.0)
	xAsy := run("asynchronous (it. 21)", workers, 0.9)

	// The two minimisers should agree.
	var maxDiff float64
	for i := range xSeq {
		if d := xSeq[i] - xAsy[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("\nmax |x_seq − x_async| = %.2e (both approach the same minimiser)\n", maxDiff)

	// Kaczmarz baseline needs a consistent system; build one.
	bc, xstar := asyrgs.RHSForSolution(a, 24)
	kz, err := asyrgs.NewKaczmarz(a, asyrgs.KaczmarzOptions{Seed: 25, Workers: workers, Beta: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	xk := make([]float64, cols)
	start := time.Now()
	iters, res, err := kz.Solve(xk, bc, 1e-6, 40*rows, 4*rows)
	status := "converged"
	if err != nil {
		status = "budget exhausted"
	}
	var kerr float64
	for i := range xk {
		if d := xk[i] - xstar[i]; d > kerr {
			kerr = d
		} else if -d > kerr {
			kerr = -d
		}
	}
	fmt.Printf("\nasync Kaczmarz on the consistent system: %s after %d projections, residual %.2e, max err %.2e (%v)\n",
		status, iters, res, kerr, time.Since(start).Round(time.Millisecond))
}
