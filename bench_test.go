// Benchmarks regenerating the paper's tables and figures, one testing.B
// target per experiment (see DESIGN.md's per-experiment index). Timed
// sections measure exactly the work the paper times; quality metrics
// (residuals, A-norm errors, outer-iteration counts) are attached with
// b.ReportMetric so `go test -bench` output carries the same columns the
// paper reports. The full suite, including the paper-scale text tables,
// can be regenerated with cmd/asybench.
package asyrgs_test

import (
	"runtime"
	"sync"
	"testing"

	asyrgs "github.com/asynclinalg/asyrgs"
	"github.com/asynclinalg/asyrgs/internal/bench"
	"github.com/asynclinalg/asyrgs/internal/sim"
	"github.com/asynclinalg/asyrgs/internal/theory"
)

// benchWorkload caches the social-media Gram matrix across benchmarks.
var benchWorkload struct {
	once  sync.Once
	a     *asyrgs.Matrix
	b     *asyrgs.Dense
	b1    []float64
	bStar []float64
	xStar []float64
}

func workloadFor(b *testing.B) (*asyrgs.Matrix, *asyrgs.Dense, []float64) {
	b.Helper()
	benchWorkload.once.Do(func() {
		benchWorkload.a, _ = asyrgs.SocialGram(asyrgs.DefaultSocialGram(800, 42))
		benchWorkload.b = asyrgs.MultiRHS(800, 8, 43)
		benchWorkload.b1 = asyrgs.RandomRHS(800, 44)
		benchWorkload.bStar, benchWorkload.xStar = asyrgs.RHSForSolution(benchWorkload.a, 45)
	})
	return benchWorkload.a, benchWorkload.b, benchWorkload.b1
}

// BenchmarkFig1RGSvsCG regenerates Figure 1's two series: the per-sweep
// cost of Randomized Gauss–Seidel vs the per-iteration cost of CG on the
// multi-RHS system (the figure's x-axis unit), with the residual after a
// fixed 10-unit budget attached as a metric.
func BenchmarkFig1RGSvsCG(b *testing.B) {
	a, rhs, _ := workloadFor(b)
	b.Run("RGS-sweep", func(b *testing.B) {
		s, err := asyrgs.NewSolver(a, asyrgs.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		x := asyrgs.NewDense(a.Rows, rhs.Cols)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SweepsDense(x, rhs, 1)
		}
		b.StopTimer()
		b.ReportMetric(s.ResidualDense(x, rhs), "rel-residual")
	})
	b.Run("CG-iteration", func(b *testing.B) {
		x := asyrgs.NewDense(a.Rows, rhs.Cols)
		var hist []float64
		b.ResetTimer()
		res, _ := asyrgs.CGDense(a, x, rhs, asyrgs.CGOptions{Tol: 1e-30, MaxIter: b.N}, &hist)
		b.StopTimer()
		b.ReportMetric(res.Residual, "rel-residual")
	})
}

// BenchmarkFig2LeftAsyRGS regenerates Figure 2 (left), AsyRGS curve: the
// cost of one asynchronous sweep at each worker count.
func BenchmarkFig2LeftAsyRGS(b *testing.B) {
	a, rhs, _ := workloadFor(b)
	for _, th := range []int{1, 2, 4, 8, 16} {
		b.Run(threadName(th), func(b *testing.B) {
			s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: th, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			x := asyrgs.NewDense(a.Rows, rhs.Cols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AsyncSweepsDense(x, rhs, 1)
			}
		})
	}
}

// BenchmarkFig2LeftCG regenerates Figure 2 (left), CG curve: one CG
// iteration (round-robin partitioned SpMV) at each worker count.
func BenchmarkFig2LeftCG(b *testing.B) {
	a, rhs, _ := workloadFor(b)
	for _, th := range []int{1, 2, 4, 8, 16} {
		b.Run(threadName(th), func(b *testing.B) {
			x := asyrgs.NewDense(a.Rows, rhs.Cols)
			b.ResetTimer()
			_, _ = asyrgs.CGDense(a, x, rhs, asyrgs.CGOptions{
				Tol: 1e-30, MaxIter: b.N, Workers: th,
				Partition: asyrgs.PartitionRoundRobin,
			}, nil)
		})
	}
}

// BenchmarkFig2Center regenerates Figure 2 (center): the residual after 10
// sweeps for atomic and non-atomic AsyRGS, reported as metrics alongside
// the run time.
func BenchmarkFig2Center(b *testing.B) {
	a, rhs, _ := workloadFor(b)
	for _, variant := range []struct {
		name      string
		nonAtomic bool
	}{{"atomic", false}, {"non-atomic", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var res float64
			for i := 0; i < b.N; i++ {
				s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: runtime.GOMAXPROCS(0), Seed: 3, NonAtomic: variant.nonAtomic})
				if err != nil {
					b.Fatal(err)
				}
				x := asyrgs.NewDense(a.Rows, rhs.Cols)
				s.AsyncSweepsDense(x, rhs, 10)
				res = s.ResidualDense(x, rhs)
			}
			b.ReportMetric(res, "rel-residual-10-sweeps")
		})
	}
}

// BenchmarkFig2Right regenerates Figure 2 (right): the relative A-norm
// error after 10 sweeps on a known-solution system.
func BenchmarkFig2Right(b *testing.B) {
	a, _, _ := workloadFor(b)
	bStar, xStar := benchWorkload.bStar, benchWorkload.xStar
	normX := a.ANorm(xStar)
	var errA float64
	for i := 0; i < b.N; i++ {
		s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: runtime.GOMAXPROCS(0), Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, a.Rows)
		s.AsyncSweeps(x, bStar, 10)
		errA = a.ANormErr(x, xStar) / normX
	}
	b.ReportMetric(errA, "rel-Anorm-err-10-sweeps")
}

// BenchmarkTable1FCG regenerates Table 1: Flexible-CG preconditioned by
// AsyRGS at each inner-sweep count, timing the full solve to 1e-8 and
// reporting outer iterations and mat-ops as metrics.
func BenchmarkTable1FCG(b *testing.B) {
	a, _, b1 := workloadFor(b)
	for _, inner := range []int{30, 20, 10, 5, 3, 2, 1} {
		b.Run(innerName(inner), func(b *testing.B) {
			var outer int
			for i := 0; i < b.N; i++ {
				s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: runtime.GOMAXPROCS(0), Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				pre := asyrgs.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, inner) })
				x := make([]float64, a.Rows)
				res, _ := asyrgs.FlexibleCG(a, x, b1, pre, asyrgs.FCGOptions{
					Tol: 1e-8, MaxIter: 4000, Workers: runtime.GOMAXPROCS(0),
					Partition: asyrgs.PartitionRoundRobin,
				})
				outer = res.Iterations
			}
			b.ReportMetric(float64(outer), "outer-iters")
			b.ReportMetric(float64(outer*(inner+1)), "mat-ops")
		})
	}
}

// BenchmarkFig3Left regenerates Figure 3 (left): FCG+AsyRGS solve time to
// 1e-8 at each thread count for 2 and 10 inner sweeps.
func BenchmarkFig3Left(b *testing.B) {
	a, _, b1 := workloadFor(b)
	for _, inner := range []int{2, 10} {
		for _, th := range []int{1, 2, 4, 8} {
			b.Run(innerName(inner)+"/"+threadName(th), func(b *testing.B) {
				var outer int
				for i := 0; i < b.N; i++ {
					s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: th, Seed: 6})
					if err != nil {
						b.Fatal(err)
					}
					pre := asyrgs.PrecondFunc(func(z, r []float64) { s.Precondition(z, r, inner) })
					x := make([]float64, a.Rows)
					res, _ := asyrgs.FlexibleCG(a, x, b1, pre, asyrgs.FCGOptions{
						Tol: 1e-8, MaxIter: 4000, Workers: th,
						Partition: asyrgs.PartitionRoundRobin,
					})
					outer = res.Iterations
				}
				// Figure 3 (right): the outer-iteration count per thread.
				b.ReportMetric(float64(outer), "outer-iters")
			})
		}
	}
}

// BenchmarkTheoryBounds regenerates the analytical validation: a
// simulator-enforced consistent-read run with worst-case delay, reporting
// the measured error reduction and the Theorem 3 bound side by side.
func BenchmarkTheoryBounds(b *testing.B) {
	lap := asyrgs.Laplacian2D(16, 16)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		b.Fatal(err)
	}
	est := asyrgs.EstimateSpectrum(a, 100, 7)
	tau := 8
	beta := asyrgs.OptimalBeta(asyrgs.Rho(a), tau)
	p := asyrgs.NewBoundParams(a, est.LambdaMin, est.LambdaMax, tau, beta)
	m := 40 * a.Rows
	rhs, xstar := asyrgs.RHSForSolution(a, 8)
	var measured float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := sim.RunConsistent(a, rhs, make([]float64, a.Rows), xstar, m, sim.FixedDelay{T: tau}, sim.Config{Seed: uint64(9 + i), Beta: beta, Stride: m})
		measured = tr.Errors[len(tr.Errors)-1] / tr.Errors[0]
	}
	b.StopTimer()
	b.ReportMetric(measured, "measured-Em/E0")
	b.ReportMetric(p.ConsistentBound(m), "theorem3-bound")
}

// BenchmarkLSQAsync regenerates the §8 validation: asynchronous randomized
// coordinate descent on an overdetermined system, one sweep per op.
func BenchmarkLSQAsync(b *testing.B) {
	a := asyrgs.RandomOverdetermined(4000, 1000, 6, 10)
	rhs := asyrgs.RandomRHS(4000, 11)
	for _, th := range []int{1, 4} {
		b.Run(threadName(th), func(b *testing.B) {
			beta := 1.0
			if th > 1 {
				beta = 0.9
			}
			s, err := asyrgs.NewLSQ(a, asyrgs.LSQOptions{Workers: th, Seed: 12, Beta: beta})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Iterations(x, rhs, 1000)
			}
		})
	}
}

// BenchmarkSpMVPartition is the DESIGN.md ablation for the parallel SpMV
// row partitioning on the skewed matrix: contiguous blocks suffer load
// imbalance that round-robin avoids (the paper's choice for CG).
func BenchmarkSpMVPartition(b *testing.B) {
	a, _, _ := workloadFor(b)
	x := asyrgs.RandomRHS(a.Cols, 13)
	y := make([]float64, a.Rows)
	for _, part := range []struct {
		name string
		p    asyrgs.Partition
	}{{"contiguous", asyrgs.PartitionContiguous}, {"round-robin", asyrgs.PartitionRoundRobin}} {
		b.Run(part.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulVecPar(y, x, runtime.GOMAXPROCS(0), part.p)
			}
		})
	}
}

// BenchmarkBetaAblation compares unit step size against the bound-optimal
// β̃ under enforced worst-case delay (Theorem 3's design choice).
func BenchmarkBetaAblation(b *testing.B) {
	lap := asyrgs.Laplacian2D(12, 12)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		b.Fatal(err)
	}
	tau := 12
	rhs, xstar := asyrgs.RHSForSolution(a, 14)
	m := 30 * a.Rows
	for _, cfg := range []struct {
		name string
		beta float64
	}{{"beta-1", 1.0}, {"beta-optimal", asyrgs.OptimalBeta(asyrgs.Rho(a), tau)}} {
		b.Run(cfg.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				tr := sim.RunConsistent(a, rhs, make([]float64, a.Rows), xstar, m, sim.FixedDelay{T: tau}, sim.Config{Seed: uint64(15 + i), Beta: cfg.beta, Stride: m})
				ratio = tr.Errors[len(tr.Errors)-1] / tr.Errors[0]
			}
			b.ReportMetric(ratio, "Em/E0")
		})
	}
}

// BenchmarkHarnessSmoke runs the text-table harness end to end at tiny
// scale, guarding the cmd/asybench path.
func BenchmarkHarnessSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Default()
		cfg.Terms = 150
		cfg.RHSCols = 2
		cfg.Threads = []int{1, 2}
		cfg.Sweeps = 3
		cfg.Repeats = 1
		r := bench.NewRunner(cfg)
		r.Fig1(10)
	}
}

// BenchmarkRhoComputation measures the theory parameter extraction that
// OptimalBeta depends on.
func BenchmarkRhoComputation(b *testing.B) {
	a, _, _ := workloadFor(b)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += theory.Rho(a) + theory.Rho2(a)
	}
	_ = acc
}

func threadName(th int) string {
	switch th {
	case 1:
		return "threads-1"
	case 2:
		return "threads-2"
	case 4:
		return "threads-4"
	case 8:
		return "threads-8"
	case 16:
		return "threads-16"
	}
	return "threads-n"
}

func innerName(inner int) string {
	names := map[int]string{1: "inner-1", 2: "inner-2", 3: "inner-3", 5: "inner-5", 10: "inner-10", 20: "inner-20", 30: "inner-30"}
	return names[inner]
}

// BenchmarkDistMem regenerates the distributed-memory emulation experiment:
// one fixed-budget solve per queue capacity, with residual and backlog as
// metrics.
func BenchmarkDistMem(b *testing.B) {
	a, _, b1 := workloadFor(b)
	for _, cap := range []int{1, 16} {
		name := "queue-1"
		if cap == 16 {
			name = "queue-16"
		}
		b.Run(name, func(b *testing.B) {
			var res asyrgs.DistResult
			for i := 0; i < b.N; i++ {
				x := make([]float64, a.Rows)
				var err error
				res, err = asyrgs.DistSolve(a, x, b1, 10, asyrgs.DistConfig{Workers: 8, QueueCap: cap, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Residual, "rel-residual")
			b.ReportMetric(float64(res.MaxQueueLen), "max-backlog")
		})
	}
}

// BenchmarkClassicVsRandomized times one fixed budget of classical
// asynchronous Jacobi against AsyRGS at equal sweeps (the §2 comparison).
func BenchmarkClassicVsRandomized(b *testing.B) {
	a, _, b1 := workloadFor(b)
	b.Run("async-jacobi", func(b *testing.B) {
		var res asyrgs.StationaryResult
		for i := 0; i < b.N; i++ {
			x := make([]float64, a.Rows)
			res = asyrgs.AsyncJacobi(a, x, b1, 10, 8)
		}
		b.ReportMetric(res.Residual, "rel-residual")
	})
	b.Run("asyrgs", func(b *testing.B) {
		var res float64
		for i := 0; i < b.N; i++ {
			s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: 8, Seed: 10})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, a.Rows)
			s.AsyncSweeps(x, b1, 10)
			res = s.Residual(x, b1)
		}
		b.ReportMetric(res, "rel-residual")
	})
}

// BenchmarkSolveWithGuarantee times the theory-driven scheduler end to end
// (certificate computation + barrier-separated asynchronous epochs).
func BenchmarkSolveWithGuarantee(b *testing.B) {
	lap := asyrgs.Laplacian2D(20, 20)
	a, _, err := asyrgs.UnitDiagonalScale(lap)
	if err != nil {
		b.Fatal(err)
	}
	rhs := asyrgs.RandomRHS(a.Rows, 11)
	var g asyrgs.Guarantee
	for i := 0; i < b.N; i++ {
		s, err := asyrgs.NewSolver(a, asyrgs.Options{Workers: 4, Seed: 12})
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, a.Rows)
		g, err = s.SolveWithGuarantee(x, rhs, 0.1, 0.1, 4, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Epochs), "epochs")
}
